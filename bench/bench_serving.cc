// Serving under traffic: open-loop load against the Connectivity façade —
// in-process, and end-to-end over the network subsystem (src/serve/).
//
// Replays configurable request mixes (read-mostly, write-heavy, bursty
// arrivals, Zipfian keys, delete-heavy insert+erase churn) against one
// Connectivity index while a writer applies edge batches.
//
// Transports (--transport=inproc|socket|all):
//
//   inproc — N client threads call the façade directly, for both serving
//   modes (snapshot: epoch-published immutable snapshots, wait-free reads;
//   shared-lock: the baseline, shared lock + lazy Θ(n) refresh per batch).
//
//   socket — the same open-loop schedule driven through a live
//   connectit_server over a Unix-domain socket by K forked client
//   *processes* (--client-procs, default 4), each a single-threaded
//   pipelined serve::Client; the writer sends InsertBatch/EraseBatch
//   frames over its own connection (retrying on kBackpressure), so the
//   wire protocol, epoll workers, mutation queue, and writer thread are
//   all on the measured path. End-to-end p50/p99/p999 land in the same
//   JSON next to the in-process numbers. Children are spawned
//   fork+execv(/proc/self/exe --client-worker ...) so no thread ever
//   crosses a fork.
//
// The generator is open-loop: every request has a *scheduled* arrival time
// drawn from the offered rate, independent of when earlier requests
// completed, and latency is measured from the scheduled arrival to
// completion — so queueing delay under overload is charged to the server,
// not hidden by a slow closed-loop client (the coordinated-omission trap).
// Clients partition one logical arrival schedule by index (the stateless
// Rng/Zipfian samplers make request i a pure function of i), so the
// replayed trace is identical across modes, transports, and runs; socket
// clients share the schedule origin through a CLOCK_REALTIME epoch the
// parent pins before forking.
//
// Reports achieved throughput and p50/p99/p999 latency per mix × mode, and
// writes machine-readable BENCH_serving.json (schema checked in CI by
// tools/check_bench_serving.py).
//
// Flags: --smoke (tiny run for CI), --out=PATH (default BENCH_serving.json),
//        --readers=N (default 4), --transport=inproc|socket|all (default
//        inproc), --client-procs=K (default 4).
// (--client-worker and its satellite flags are the internal child-process
// entry; not for direct use.)

#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/connectivity_index.h"
#include "src/graph/generators.h"
#include "src/parallel/random.h"
#include "src/serve/client.h"
#include "src/serve/server.h"

namespace connectit::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct MixConfig {
  const char* name;
  bool zipf_keys;       // Zipfian(0.99) keys instead of uniform
  bool bursty;          // square-wave arrivals (10x rate, 10% duty)
  size_t batch_size;    // writer batch size
  double batch_pause_s; // writer sleep between batches (0 = saturating)
  // Fraction of each insert batch the writer deletes again right after
  // inserting it (0 = insert-only). Exercises Connectivity::Erase — forest
  // maintenance and replacement search — under concurrent readers.
  double erase_fraction = 0;
};

struct RunConfig {
  NodeId nodes = 0;
  size_t readers = 4;
  size_t ops = 0;                // total read requests per mix x mode
  double offered_rate = 0;       // requests/second across all readers
  size_t warmup_ops = 0;         // executed, not measured
};

struct MixResult {
  std::string mix;
  std::string mode;
  std::string transport = "inproc";
  size_t client_processes = 0;   // socket transport only
  double offered_rate = 0;
  double achieved_rate = 0;
  size_t ops = 0;
  size_t batches = 0;
  size_t edges_ingested = 0;
  size_t edges_erased = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0, max_us = 0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(sorted.size() - 1,
                              static_cast<size_t>(q * sorted.size()));
  return sorted[idx];
}

uint64_t RealNowUs() {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1'000;
}

// Scheduled arrival (seconds from run start) of request i. Steady arrivals
// space requests 1/rate apart; bursty arrivals compress each 1000-request
// period into its first 10% (10x instantaneous rate), preserving the
// average offered rate.
double ArrivalTime(size_t i, double rate, bool bursty) {
  if (!bursty) return static_cast<double>(i) / rate;
  constexpr size_t kPeriodOps = 1000;
  const double period_s = static_cast<double>(kPeriodOps) / rate;
  const size_t period = i / kPeriodOps;
  const size_t within = i % kPeriodOps;
  return static_cast<double>(period) * period_s +
         static_cast<double>(within) / kPeriodOps * (period_s / 10.0);
}

MixResult RunMix(const MixConfig& mix, ServingMode mode, const RunConfig& cfg,
                 const EdgeList& stream) {
  const size_t bulk = stream.size() / 2;
  EdgeList base;
  base.num_nodes = cfg.nodes;
  base.edges.assign(stream.edges.begin(), stream.edges.begin() + bulk);

  Connectivity index(Connectivity::Spec().Serving(mode));
  index.Build(GraphHandle(base)).Stream();

  // Request i's keys and kind are pure functions of i: identical traces
  // across modes.
  const Rng op_rng(/*seed=*/7);
  const Zipfian zipf(cfg.nodes, /*theta=*/0.99, /*seed=*/11);
  auto key = [&](size_t i, size_t salt) -> NodeId {
    if (mix.zipf_keys) {
      return static_cast<NodeId>(zipf.ScatteredSample(2 * i + salt));
    }
    return static_cast<NodeId>(op_rng.GetBounded(2 * i + salt, cfg.nodes));
  };
  // 90% SameComponent, 5% Component, 4% Acquire + 3 pinned queries,
  // 1% NumComponents.
  auto execute = [&](size_t i) {
    const uint64_t kind = op_rng.Get(i) % 100;
    const NodeId u = key(i, 0), v = key(i, 1);
    if (kind < 90) {
      index.SameComponent(u, v);
    } else if (kind < 95) {
      index.Component(u);
    } else if (kind < 99) {
      const Snapshot snap = index.Acquire();
      snap.SameComponent(u, v);
      snap.Component(u);
      snap.NumComponents();
    } else {
      index.NumComponents();
    }
  };

  // Warmup (unmeasured, closed-loop) so first-touch costs (lazy refresh,
  // page faults) do not land in the measured window.
  for (size_t i = 0; i < cfg.warmup_ops; ++i) execute(i);

  // Writer: cycles the held-out tail as insert batches until readers
  // finish, paced by the mix's batch interval. A delete-heavy mix erases
  // a slice of every batch right after inserting it (which also makes the
  // wrap-around re-inserts meaningful: the erased edges really are gone).
  std::atomic<bool> stop{false};
  std::atomic<size_t> batches{0};
  std::atomic<size_t> edges_ingested{0};
  std::atomic<size_t> edges_erased{0};
  std::thread writer([&] {
    size_t cursor = bulk;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t end = std::min(cursor + mix.batch_size, stream.size());
      const std::vector<Edge> batch(stream.edges.begin() + cursor,
                                    stream.edges.begin() + end);
      index.Insert(batch);
      edges_ingested.fetch_add(end - cursor, std::memory_order_relaxed);
      batches.fetch_add(1, std::memory_order_relaxed);
      if (mix.erase_fraction > 0 && !batch.empty()) {
        const size_t k = std::max<size_t>(
            1, static_cast<size_t>(batch.size() * mix.erase_fraction));
        index.Erase(std::vector<Edge>(batch.begin(), batch.begin() + k));
        edges_erased.fetch_add(k, std::memory_order_relaxed);
        batches.fetch_add(1, std::memory_order_relaxed);
      }
      cursor = end < stream.size() ? end : bulk;  // wrap: endless ingest
      if (mix.batch_pause_s > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(mix.batch_pause_s));
      }
    }
  });

  // Readers: partition the arrival schedule by index. Latency is
  // completion minus *scheduled* arrival.
  const Clock::time_point t0 = Clock::now() + std::chrono::milliseconds(10);
  std::vector<std::vector<double>> lat_us(cfg.readers);
  std::vector<Clock::time_point> last_done(cfg.readers, t0);
  std::vector<std::thread> readers;
  readers.reserve(cfg.readers);
  for (size_t t = 0; t < cfg.readers; ++t) {
    readers.emplace_back([&, t] {
      lat_us[t].reserve(cfg.ops / cfg.readers + 1);
      for (size_t i = t; i < cfg.ops; i += cfg.readers) {
        const double at = ArrivalTime(i, cfg.offered_rate, mix.bursty);
        const Clock::time_point deadline =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(at));
        // Open loop: wait for the scheduled arrival; if we are already
        // late (overload), fire immediately and charge the delay.
        if (deadline - Clock::now() > std::chrono::milliseconds(1)) {
          std::this_thread::sleep_until(deadline);
        } else {
          while (Clock::now() < deadline) std::this_thread::yield();
        }
        execute(cfg.warmup_ops + i);
        const Clock::time_point done = Clock::now();
        lat_us[t].push_back(
            std::chrono::duration<double, std::micro>(done - deadline)
                .count());
        last_done[t] = done;
      }
    });
  }
  for (std::thread& r : readers) r.join();
  stop.store(true);
  writer.join();

  std::vector<double> merged;
  merged.reserve(cfg.ops);
  Clock::time_point end = t0;
  for (size_t t = 0; t < cfg.readers; ++t) {
    merged.insert(merged.end(), lat_us[t].begin(), lat_us[t].end());
    end = std::max(end, last_done[t]);
  }
  std::sort(merged.begin(), merged.end());

  MixResult result;
  result.mix = mix.name;
  result.mode = ToString(mode);
  result.offered_rate = cfg.offered_rate;
  result.ops = merged.size();
  const double elapsed = std::chrono::duration<double>(end - t0).count();
  result.achieved_rate = elapsed > 0 ? merged.size() / elapsed : 0;
  result.batches = batches.load();
  result.edges_ingested = edges_ingested.load();
  result.edges_erased = edges_erased.load();
  result.p50_us = Percentile(merged, 0.50);
  result.p99_us = Percentile(merged, 0.99);
  result.p999_us = Percentile(merged, 0.999);
  result.max_us = merged.empty() ? 0 : merged.back();
  return result;
}

// ---- socket transport: forked pipelined clients over src/serve ----

struct ClientWorkerConfig {
  std::string unix_path;
  std::string lat_out;
  NodeId nodes = 0;
  size_t ops = 0;
  size_t stride = 1;     // total client processes (schedule partition)
  size_t offset = 0;     // this process's slice: offset, offset+stride, ...
  size_t warmup_ops = 0;
  double rate = 0;
  bool bursty = false;
  bool zipf = false;
  uint64_t start_at_us = 0;  // shared CLOCK_REALTIME schedule origin
};

// Child-process entry (--client-worker): one single-threaded pipelined
// client driving its slice of the shared open-loop schedule. Latency
// (completion minus scheduled arrival, µs) for every request is written
// to lat_out as raw doubles for the parent to merge.
int RunClientWorker(const ClientWorkerConfig& w) {
  serve::ClientConfig config;
  config.unix_path = w.unix_path;
  config.request_timeout_ms = 30000;
  serve::Client client(config);
  std::string error;
  if (!client.Connect(&error)) {
    std::fprintf(stderr, "client-worker %zu: %s\n", w.offset, error.c_str());
    return 1;
  }

  const Rng op_rng(/*seed=*/7);
  const Zipfian zipf(w.nodes, /*theta=*/0.99, /*seed=*/11);
  auto key = [&](size_t i, size_t salt) -> NodeId {
    if (w.zipf) return static_cast<NodeId>(zipf.ScatteredSample(2 * i + salt));
    return static_cast<NodeId>(op_rng.GetBounded(2 * i + salt, w.nodes));
  };
  // The socket op mix mirrors the in-process one; the in-process "Acquire
  // + 3 pinned queries" bucket maps to the snapshot-consistent
  // ComponentSizes request (one frame answered from one pinned snapshot).
  auto send = [&](size_t i) -> uint64_t {
    const uint64_t kind = op_rng.Get(i) % 100;
    const NodeId u = key(i, 0), v = key(i, 1);
    if (kind < 90) return client.SendSameComponent(u, v);
    if (kind < 95) return client.SendComponent(u);
    if (kind < 99) return client.SendComponentSizes(16);
    return client.SendNumComponents();
  };

  // Warmup: closed loop, blocking on each response.
  serve::Client::Response response;
  for (size_t i = w.offset; i < w.warmup_ops; i += w.stride) {
    send(i);
    if (!client.Flush(&error) ||
        !client.Poll(&response, config.request_timeout_ms, &error)) {
      std::fprintf(stderr, "client-worker %zu warmup: %s\n", w.offset,
                   error.c_str());
      return 1;
    }
  }

  std::vector<double> latencies;
  latencies.reserve(w.ops / w.stride + 1);
  std::unordered_map<uint64_t, uint64_t> inflight;  // request_id -> deadline
  auto record = [&](const serve::Client::Response& r) -> bool {
    const auto it = inflight.find(r.request_id);
    if (it == inflight.end()) return false;
    const uint64_t now = RealNowUs();
    latencies.push_back(now > it->second
                            ? static_cast<double>(now - it->second)
                            : 0.0);
    inflight.erase(it);
    return true;
  };

  for (size_t i = w.offset; i < w.ops; i += w.stride) {
    const double at = ArrivalTime(i, w.rate, w.bursty);
    const uint64_t deadline_us =
        w.start_at_us + static_cast<uint64_t>(at * 1e6);
    // Open loop: until the scheduled arrival, drain finished responses
    // (pipelining: a slow answer never delays the next send); the final
    // sub-millisecond sleeps to the absolute deadline so the send never
    // fires early and never burns the core.
    while (true) {
      // Drain whatever already arrived (Poll(…, 0, …) never sleeps).
      while (client.Poll(&response, 0, &error)) record(response);
      if (error != "request timed out") {
        std::fprintf(stderr, "client-worker %zu: %s\n", w.offset,
                     error.c_str());
        return 1;
      }
      const uint64_t now = RealNowUs();
      if (now >= deadline_us) break;
      const int wait_ms = static_cast<int>(
          std::min<uint64_t>((deadline_us - now) / 1000, 5));
      if (wait_ms == 0) {
        timespec until;
        until.tv_sec = static_cast<time_t>(deadline_us / 1'000'000);
        until.tv_nsec = static_cast<long>((deadline_us % 1'000'000) * 1000);
        clock_nanosleep(CLOCK_REALTIME, TIMER_ABSTIME, &until, nullptr);
        break;
      }
      if (client.Poll(&response, wait_ms, &error)) {
        record(response);
      } else if (error != "request timed out") {
        std::fprintf(stderr, "client-worker %zu: %s\n", w.offset,
                     error.c_str());
        return 1;
      }
    }
    const uint64_t id = send(w.warmup_ops + i);
    if (!client.Flush(&error)) {
      std::fprintf(stderr, "client-worker %zu: %s\n", w.offset,
                   error.c_str());
      return 1;
    }
    inflight[id] = deadline_us;
  }
  // Tail drain: every in-flight request still gets its answer.
  while (!inflight.empty()) {
    if (!client.Poll(&response, config.request_timeout_ms, &error)) {
      std::fprintf(stderr, "client-worker %zu drain: %s\n", w.offset,
                   error.c_str());
      return 1;
    }
    record(response);
  }

  std::FILE* f = std::fopen(w.lat_out.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "client-worker %zu: cannot write %s\n", w.offset,
                 w.lat_out.c_str());
    return 1;
  }
  std::fwrite(latencies.data(), sizeof(double), latencies.size(), f);
  std::fclose(f);
  return 0;
}

// Parent side: a live Server over a Unix socket, K forked client
// processes on the read schedule, mutations driven through a separate
// client connection (InsertBatch/EraseBatch frames, kBackpressure
// retried).
MixResult RunMixSocket(const MixConfig& mix, const RunConfig& cfg,
                       const EdgeList& stream, size_t client_procs,
                       const char* exe) {
  const size_t bulk = stream.size() / 2;
  EdgeList base;
  base.num_nodes = cfg.nodes;
  base.edges.assign(stream.edges.begin(), stream.edges.begin() + bulk);

  Connectivity index;  // kSnapshot serving: the socket read path
  index.Build(GraphHandle(base)).Stream();

  const std::string sock_path = "/tmp/connectit_bench_" +
                                std::to_string(getpid()) + "_" + mix.name +
                                ".sock";
  serve::ServerConfig server_config;
  server_config.unix_path = sock_path;
  server_config.workers = 2;
  server_config.queue_capacity = 256;
  serve::Server server(&index, server_config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "bench_serving: %s\n", error.c_str());
    std::exit(1);
  }

  // Children execv a fresh image (no forked threads) and share the
  // schedule origin through CLOCK_REALTIME.
  const uint64_t start_at_us = RealNowUs() + 700'000;
  std::vector<pid_t> children;
  std::vector<std::string> lat_files;
  for (size_t j = 0; j < client_procs; ++j) {
    const std::string lat_out = sock_path + ".lat" + std::to_string(j);
    lat_files.push_back(lat_out);
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      std::exit(1);
    }
    if (pid == 0) {
      std::vector<std::string> args = {
          exe,
          "--client-worker",
          "--unix=" + sock_path,
          "--lat-out=" + lat_out,
          "--nodes=" + std::to_string(cfg.nodes),
          "--ops=" + std::to_string(cfg.ops),
          "--stride=" + std::to_string(client_procs),
          "--offset=" + std::to_string(j),
          "--warmup=" + std::to_string(cfg.warmup_ops),
          "--rate=" + std::to_string(cfg.offered_rate),
          "--bursty=" + std::to_string(mix.bursty ? 1 : 0),
          "--zipf=" + std::to_string(mix.zipf_keys ? 1 : 0),
          "--start-at-us=" + std::to_string(start_at_us),
      };
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(exe, argv.data());
      std::perror("execv");
      _exit(127);
    }
    children.push_back(pid);
  }

  // Writer over the wire: same pacing as the in-process writer, but each
  // batch is an InsertBatch frame (plus an EraseBatch slice for
  // delete-heavy mixes); a kBackpressure reply re-offers the same batch.
  std::atomic<bool> stop{false};
  std::atomic<size_t> batches{0};
  std::atomic<size_t> edges_ingested{0};
  std::atomic<size_t> edges_erased{0};
  std::thread writer([&] {
    serve::ClientConfig client_config;
    client_config.unix_path = sock_path;
    serve::Client client(client_config);
    std::string werror;
    if (!client.Connect(&werror)) {
      std::fprintf(stderr, "bench_serving writer: %s\n", werror.c_str());
      std::exit(1);
    }
    auto mutate = [&](serve::Opcode opcode, std::vector<Edge> edges) -> bool {
      serve::MutateRequest request;
      request.edges = std::move(edges);
      serve::MutateResponse response;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!client.Mutate(opcode, request, &response, &werror)) {
          std::fprintf(stderr, "bench_serving writer: %s\n", werror.c_str());
          std::exit(1);
        }
        if (response.status == serve::Status::kOk) return true;
        if (response.status != serve::Status::kBackpressure) {
          std::fprintf(stderr, "bench_serving writer: mutation refused: %s\n",
                       serve::ToString(response.status));
          std::exit(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return false;
    };
    size_t cursor = bulk;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t end = std::min(cursor + mix.batch_size, stream.size());
      std::vector<Edge> batch(stream.edges.begin() + cursor,
                              stream.edges.begin() + end);
      if (!mutate(serve::Opcode::kInsertBatch, batch)) break;
      edges_ingested.fetch_add(end - cursor, std::memory_order_relaxed);
      batches.fetch_add(1, std::memory_order_relaxed);
      if (mix.erase_fraction > 0 && !batch.empty()) {
        const size_t k = std::max<size_t>(
            1, static_cast<size_t>(batch.size() * mix.erase_fraction));
        if (!mutate(serve::Opcode::kEraseBatch,
                    std::vector<Edge>(batch.begin(), batch.begin() + k))) {
          break;
        }
        edges_erased.fetch_add(k, std::memory_order_relaxed);
        batches.fetch_add(1, std::memory_order_relaxed);
      }
      cursor = end < stream.size() ? end : bulk;
      if (mix.batch_pause_s > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(mix.batch_pause_s));
      }
    }
  });

  bool children_ok = true;
  for (const pid_t pid : children) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) children_ok = false;
  }
  const uint64_t end_us = RealNowUs();
  stop.store(true);
  writer.join();
  server.Stop();
  if (!children_ok) {
    std::fprintf(stderr, "bench_serving: a client process failed\n");
    std::exit(1);
  }

  std::vector<double> merged;
  merged.reserve(cfg.ops);
  for (const std::string& lat_file : lat_files) {
    std::FILE* f = std::fopen(lat_file.c_str(), "rb");
    if (f == nullptr) continue;
    double value;
    while (std::fread(&value, sizeof(double), 1, f) == 1) {
      merged.push_back(value);
    }
    std::fclose(f);
    unlink(lat_file.c_str());
  }
  std::sort(merged.begin(), merged.end());

  MixResult result;
  result.mix = mix.name;
  result.mode = ToString(ServingMode::kSnapshot);
  result.transport = "socket";
  result.client_processes = client_procs;
  result.offered_rate = cfg.offered_rate;
  result.ops = merged.size();
  const double elapsed =
      end_us > start_at_us ? (end_us - start_at_us) * 1e-6 : 0;
  result.achieved_rate = elapsed > 0 ? merged.size() / elapsed : 0;
  result.batches = batches.load();
  result.edges_ingested = edges_ingested.load();
  result.edges_erased = edges_erased.load();
  result.p50_us = Percentile(merged, 0.50);
  result.p99_us = Percentile(merged, 0.99);
  result.p999_us = Percentile(merged, 0.999);
  result.max_us = merged.empty() ? 0 : merged.back();
  return result;
}

void WriteJson(const char* path, const RunConfig& cfg,
               const std::vector<MixResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"nodes\": %llu,\n",
               static_cast<unsigned long long>(cfg.nodes));
  std::fprintf(f, "  \"readers\": %zu,\n", cfg.readers);
  std::fprintf(f, "  \"mixes\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const MixResult& r = results[i];
    std::fprintf(
        f,
        "    {\"mix\": \"%s\", \"mode\": \"%s\", \"transport\": \"%s\", "
        "\"client_processes\": %zu, "
        "\"offered_ops_per_sec\": %.1f, \"achieved_ops_per_sec\": %.1f, "
        "\"ops\": %zu, \"batches\": %zu, \"edges_ingested\": %zu, "
        "\"edges_erased\": %zu, "
        "\"p50_us\": %.2f, \"p99_us\": %.2f, \"p999_us\": %.2f, "
        "\"max_us\": %.2f}%s\n",
        r.mix.c_str(), r.mode.c_str(), r.transport.c_str(),
        r.client_processes, r.offered_rate, r.achieved_rate, r.ops,
        r.batches, r.edges_ingested, r.edges_erased, r.p50_us, r.p99_us,
        r.p999_us, r.max_us, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace
}  // namespace connectit::bench

int main(int argc, char** argv) {
  using namespace connectit;
  using namespace connectit::bench;

  // Child-process mode first: bench_serving re-execs itself with
  // --client-worker for the socket transport's client processes.
  bool client_worker = false;
  ClientWorkerConfig worker;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--client-worker") == 0) client_worker = true;
  }
  if (client_worker) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--client-worker") == 0) {
      } else if (std::strncmp(arg, "--unix=", 7) == 0) {
        worker.unix_path = arg + 7;
      } else if (std::strncmp(arg, "--lat-out=", 10) == 0) {
        worker.lat_out = arg + 10;
      } else if (std::strncmp(arg, "--nodes=", 8) == 0) {
        worker.nodes = static_cast<NodeId>(std::strtoull(arg + 8, nullptr, 10));
      } else if (std::strncmp(arg, "--ops=", 6) == 0) {
        worker.ops = std::strtoull(arg + 6, nullptr, 10);
      } else if (std::strncmp(arg, "--stride=", 9) == 0) {
        worker.stride = std::strtoull(arg + 9, nullptr, 10);
      } else if (std::strncmp(arg, "--offset=", 9) == 0) {
        worker.offset = std::strtoull(arg + 9, nullptr, 10);
      } else if (std::strncmp(arg, "--warmup=", 9) == 0) {
        worker.warmup_ops = std::strtoull(arg + 9, nullptr, 10);
      } else if (std::strncmp(arg, "--rate=", 7) == 0) {
        worker.rate = std::atof(arg + 7);
      } else if (std::strncmp(arg, "--bursty=", 9) == 0) {
        worker.bursty = arg[9] == '1';
      } else if (std::strncmp(arg, "--zipf=", 7) == 0) {
        worker.zipf = arg[7] == '1';
      } else if (std::strncmp(arg, "--start-at-us=", 14) == 0) {
        worker.start_at_us = std::strtoull(arg + 14, nullptr, 10);
      } else {
        std::fprintf(stderr, "client-worker: unknown flag %s\n", arg);
        return 2;
      }
    }
    return RunClientWorker(worker);
  }

  bool smoke = false;
  const char* out = "BENCH_serving.json";
  size_t readers = 4;
  std::string transport = "inproc";
  size_t client_procs = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--readers=", 10) == 0) {
      readers = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      transport = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--client-procs=", 15) == 0) {
      client_procs = static_cast<size_t>(std::atoi(argv[i] + 15));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=PATH] [--readers=N]\n"
                   "          [--transport=inproc|socket|all] "
                   "[--client-procs=K]\n",
                   argv[0]);
      return 2;
    }
  }
  if (transport != "inproc" && transport != "socket" && transport != "all") {
    std::fprintf(stderr, "bad --transport: %s\n", transport.c_str());
    return 2;
  }
  if (client_procs == 0) client_procs = 1;

  RunConfig cfg;
  cfg.readers = readers == 0 ? 1 : readers;
  cfg.nodes = smoke ? (1u << 12) : StreamNodes(1u << 20, 1u << 16);
  cfg.ops = smoke ? 3000 : 20000;
  cfg.offered_rate = smoke ? 20000 : 50000;
  cfg.warmup_ops = smoke ? 200 : 2000;

  const EdgeList stream =
      GenerateRmatEdges(cfg.nodes, 4ull * cfg.nodes, /*seed=*/97);

  const size_t batch = smoke ? 512 : 2048;
  const std::vector<MixConfig> mixes = {
      {"read_mostly", /*zipf=*/false, /*bursty=*/false, batch, 0.005},
      {"write_heavy", /*zipf=*/false, /*bursty=*/false, 2 * batch, 0.0},
      {"bursty", /*zipf=*/false, /*bursty=*/true, batch, 0.005},
      {"zipfian", /*zipf=*/true, /*bursty=*/false, batch, 0.005},
      // Fully dynamic: every insert batch is followed by an Erase of half
      // of it, so readers race forest maintenance + replacement searches.
      {"delete_heavy", /*zipf=*/false, /*bursty=*/false, batch, 0.0,
       /*erase_fraction=*/0.5},
  };

  PrintTitle("Serving under open-loop traffic: snapshot vs shared-lock");
  std::printf("%u nodes, %zu readers, offered %.0f ops/s, %zu ops/mix\n",
              cfg.nodes, cfg.readers, cfg.offered_rate, cfg.ops);
  std::printf("%-12s %-12s %-8s %12s %12s %10s %10s %10s %8s\n", "Mix",
              "Mode", "Transp", "Offered/s", "Achieved/s", "p50(us)",
              "p99(us)", "p999(us)", "Batches");
  PrintRule(110);

  std::vector<MixResult> results;
  auto report = [](const MixResult& r) {
    std::printf("%-12s %-12s %-8s %12.0f %12.0f %10.1f %10.1f %10.1f %8zu\n",
                r.mix.c_str(), r.mode.c_str(), r.transport.c_str(),
                r.offered_rate, r.achieved_rate, r.p50_us, r.p99_us,
                r.p999_us, r.batches);
  };
  for (const MixConfig& mix : mixes) {
    if (transport == "inproc" || transport == "all") {
      for (const ServingMode mode :
           {ServingMode::kSharedLock, ServingMode::kSnapshot}) {
        const MixResult r = RunMix(mix, mode, cfg, stream);
        report(r);
        results.push_back(r);
      }
    }
    if (transport == "socket" || transport == "all") {
      const MixResult r =
          RunMixSocket(mix, cfg, stream, client_procs, "/proc/self/exe");
      report(r);
      results.push_back(r);
    }
  }

  WriteJson(out, cfg, results);
  return 0;
}
