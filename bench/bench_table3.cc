// Reproduces Table 3: running times of the ConnectIt finish algorithms
// under No Sampling / k-out / BFS / LDD sampling on every suite graph, plus
// the "Other Systems" baselines. The fastest entry per (group, graph,
// representation) is marked '*' and the fastest per (graph, representation)
// overall '**', mirroring the paper's green/bold highlighting.
//
// One invocation reports the CSR, byte-compressed, and sharded-CSR columns
// side by side (a "Repr" sub-row per algorithm row), so comparing
// representations no longer takes three CONNECTIT_BENCH_REPR runs. Setting
// CONNECTIT_BENCH_REPR restricts the table to that single representation
// (any of csr/compressed/coo/sharded), preserving the old single-column
// behavior.
//
// The representative-variant lookups run through the Connectivity façade:
// each row entry is a Connectivity whose Spec names the variant (a
// misspelled name in kRows dies with a suggestion instead of silently
// skipping the row), and the timed unit is Build — the same run the
// serving layer performs.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/connectivity_index.h"
#include "src/baselines/afforest.h"
#include "src/baselines/bfscc.h"
#include "src/baselines/gapbs_sv.h"
#include "src/baselines/workefficient_cc.h"
#include "src/core/registry.h"

namespace {

using namespace connectit;

// Representative variant(s) per paper row. For rows with many internal
// options the paper reports the fastest; we time a small set of known-fast
// candidates and keep the minimum.
const std::vector<std::pair<std::string, std::vector<std::string>>> kRows = {
    {"Union-Early", {"Union-Early;FindNaive"}},
    {"Union-Hooks", {"Union-Hooks;FindNaive"}},
    {"Union-Async", {"Union-Async;FindNaive"}},
    {"Union-Rem-CAS",
     {"Union-Rem-CAS;FindNaive;SplitAtomicOne",
      "Union-Rem-CAS;FindNaive;HalveAtomicOne"}},
    {"Union-Rem-Lock", {"Union-Rem-Lock;FindNaive;SplitAtomicOne"}},
    {"Union-JTB", {"Union-JTB;FindTwoTrySplit"}},
    {"Liu-Tarjan", {"Liu-Tarjan;PRF", "Liu-Tarjan;CRFA"}},
    {"Shiloach-Vishkin", {"Shiloach-Vishkin"}},
    {"Label-Propagation", {"Label-Propagation"}},
    {"Stergiou", {"Stergiou"}},
};

const std::vector<std::pair<std::string, SamplingOption>> kGroups = {
    {"No Sampling", SamplingOption::kNone},
    {"k-out Sampling", SamplingOption::kKOut},
    {"BFS Sampling", SamplingOption::kBfs},
    {"LDD Sampling", SamplingOption::kLdd},
};

// The representations reported side by side. With CONNECTIT_BENCH_REPR set,
// only that one (bench::MakeBenchHandle's behavior) is timed.
std::vector<GraphRepresentation> TableReprs() {
  if (std::getenv("CONNECTIT_BENCH_REPR") != nullptr) {
    return {bench::BenchRepr()};
  }
  return {GraphRepresentation::kCsr, GraphRepresentation::kCompressed,
          GraphRepresentation::kSharded};
}

}  // namespace

int main() {
  const auto suite = bench::Suite();
  const std::vector<GraphRepresentation> reprs = TableReprs();
  bench::PrintTitle(
      "Table 3: ConnectIt running times (s); '*' fastest in group, "
      "'**' fastest overall per (graph, repr)");
  std::printf("ConnectIt representations:");
  for (const GraphRepresentation r : reprs) std::printf(" %s", ToString(r));
  std::printf("\n");

  // times[group][row][repr][graph]
  std::map<std::string,
           std::map<std::string, std::vector<std::vector<double>>>>
      times;
  for (const auto& [group_name, sampling] : kGroups) {
    (void)sampling;
    for (const auto& [row_name, variant_names] : kRows) {
      (void)variant_names;
      times[group_name][row_name].assign(
          reprs.size(), std::vector<double>(suite.size(), 1e300));
    }
  }
  // best[repr][graph], across all groups and rows.
  std::vector<std::vector<double>> best_per_graph(
      reprs.size(), std::vector<double>(suite.size(), 1e300));

  // Representation-major: only one representation's handles are alive at a
  // time, so a multi-column run peaks at one extra copy of the suite, not
  // one per column. The ConnectIt rows are representation-generic; the
  // "Other Systems" baselines are CSR-only and always run on the plain
  // graphs.
  for (size_t r = 0; r < reprs.size(); ++r) {
    std::vector<GraphHandle> handles;
    for (const auto& bg : suite) {
      handles.push_back(bench::MakeBenchHandle(reprs[r], bg.graph));
    }
    for (const auto& [group_name, sampling] : kGroups) {
      SamplingConfig config;
      config.option = sampling;
      for (const auto& [row_name, variant_names] : kRows) {
        auto& row = times[group_name][row_name];
        for (const std::string& vn : variant_names) {
          Connectivity index(
              Connectivity::Spec().Algorithm(vn).Sampling(config));
          for (size_t g = 0; g < suite.size(); ++g) {
            const double t = bench::TimeBest(
                [&] { index.Build(handles[g]); }, 2);
            row[r][g] = std::min(row[r][g], t);
            best_per_graph[r][g] = std::min(best_per_graph[r][g], row[r][g]);
          }
        }
      }
    }
  }

  // Other systems (static baselines, no sampling groups). CSR-only.
  std::map<std::string, std::vector<double>> others;
  const std::vector<
      std::pair<std::string, std::function<std::vector<NodeId>(const Graph&)>>>
      other_algos = {
          {"BFSCC", [](const Graph& g) { return BfsCC(g); }},
          {"WorkefficientCC",
           [](const Graph& g) { return WorkEfficientCC(g); }},
          {"GAPBS (Shiloach-Vishkin)",
           [](const Graph& g) { return GapbsShiloachVishkin(g); }},
          {"GAPBS (Afforest)", [](const Graph& g) { return AfforestCC(g); }},
      };
  for (const auto& [name, fn] : other_algos) {
    std::vector<double>& row = others[name];
    row.assign(suite.size(), 0.0);
    for (size_t g = 0; g < suite.size(); ++g) {
      row[g] = bench::TimeBest([&] { fn(suite[g].graph); }, 2);
    }
  }

  // Print: one sub-row per representation under each algorithm row; marks
  // are computed within a representation's column family so each column
  // reads like the paper's single-representation table.
  std::printf("%-18s %-26s %-11s", "Group", "Algorithm", "Repr");
  for (const auto& bg : suite) std::printf(" %11s", bg.name.c_str());
  std::printf("\n");
  bench::PrintRule(115);
  for (const auto& [group_name, sampling] : kGroups) {
    (void)sampling;
    // Fastest per (repr, column) within the group.
    std::vector<std::vector<double>> group_best(
        reprs.size(), std::vector<double>(suite.size(), 1e300));
    for (const auto& [row_name, row] : times[group_name]) {
      for (size_t r = 0; r < reprs.size(); ++r) {
        for (size_t g = 0; g < suite.size(); ++g) {
          group_best[r][g] = std::min(group_best[r][g], row[r][g]);
        }
      }
    }
    for (const auto& [row_name, variant_names] : kRows) {
      const auto& row = times[group_name][row_name];
      for (size_t r = 0; r < reprs.size(); ++r) {
        std::printf("%-18s %-26s %-11s",
                    r == 0 ? group_name.c_str() : "",
                    r == 0 ? row_name.c_str() : "", ToString(reprs[r]));
        for (size_t g = 0; g < suite.size(); ++g) {
          const char* mark = "";
          if (row[r][g] <= best_per_graph[r][g]) {
            mark = "**";
          } else if (row[r][g] <= group_best[r][g]) {
            mark = "*";
          }
          std::printf(" %9.2e%-2s", row[r][g], mark);
        }
        std::printf("\n");
      }
    }
    bench::PrintRule(115);
  }
  for (const auto& [name, fn] : other_algos) {
    (void)fn;
    std::printf("%-18s %-26s %-11s", "Other Systems", name.c_str(), "csr");
    for (size_t g = 0; g < suite.size(); ++g) {
      std::printf(" %9.2e  ", others[name][g]);
    }
    std::printf("\n");
  }
  bench::PrintRule(115);

  // Paper-shape summary: speedup of the fastest sampled ConnectIt entry
  // over the fastest unsampled entry, and over the fastest other system —
  // per representation.
  std::printf("\nPer-graph summary (paper §4.2-4.3 claims):\n");
  for (size_t r = 0; r < reprs.size(); ++r) {
    for (size_t g = 0; g < suite.size(); ++g) {
      double best_nosample = 1e300;
      for (const auto& [row_name, row] : times["No Sampling"]) {
        best_nosample = std::min(best_nosample, row[r][g]);
      }
      double best_other = 1e300;
      for (const auto& [name, row] : others) {
        best_other = std::min(best_other, row[g]);
      }
      std::printf(
          "  %-10s %-8s fastest-sampled=%.2e  vs no-sampling: %.2fx  vs "
          "other-systems: %.2fx\n",
          ToString(reprs[r]), suite[g].name.c_str(), best_per_graph[r][g],
          best_nosample / best_per_graph[r][g],
          best_other / best_per_graph[r][g]);
    }
  }

  // Table-3 extension: static time + first-batch latency. For every row
  // with a streaming form, the static pass seeds the variant's streaming
  // structure through the registry's StreamingSeed::FromStatic seam and
  // one held-out batch lands on it — together, what a serving deployment
  // pays between "data loaded" and "first incremental result". Static is
  // best-of-2 (the usual convention); first-batch is the matching
  // one-shot latency on the freshly seeded structure.
  {
    constexpr size_t kFirstBatch = 10000;
    std::printf(
        "\nStatic time + first-batch latency "
        "(StreamingSeed::FromStatic, batch=%zu edges; static+first):\n",
        kFirstBatch);
    struct HandoffInput {
      Graph base;
      std::vector<Edge> batch;
    };
    std::vector<HandoffInput> inputs;
    for (const auto& bg : suite) {
      const EdgeList all = ExtractEdges(bg.graph);
      const size_t cut = all.size() > kFirstBatch ? all.size() - kFirstBatch
                                                  : all.size() / 2;
      EdgeList base;
      base.num_nodes = all.num_nodes;
      base.edges.assign(all.edges.begin(), all.edges.begin() + cut);
      inputs.push_back({BuildGraph(base),
                        std::vector<Edge>(all.edges.begin() + cut,
                                          all.edges.end())});
    }
    std::printf("%-26s", "Algorithm");
    for (const auto& bg : suite) std::printf(" %21s", bg.name.c_str());
    std::printf("\n");
    bench::PrintRule(136);
    for (const auto& [row_name, variant_names] : kRows) {
      const Variant* v = nullptr;
      for (const std::string& vn : variant_names) {
        const Variant& candidate = GetVariantOrDie(vn);
        if (candidate.supports_streaming) {
          v = &candidate;
          break;
        }
      }
      if (v == nullptr) continue;  // no streaming form for this row
      std::printf("%-26s", row_name.c_str());
      for (const HandoffInput& input : inputs) {
        double best_static = 1e300, best_first = 1e300;
        for (int rep = 0; rep < 2; ++rep) {
          std::unique_ptr<StreamingConnectivity> seeded;
          const double t_static = bench::TimeIt([&] {
            seeded = v->make_streaming(
                StreamingSeed::FromStatic(GraphHandle(input.base)));
          });
          const double t_first = bench::TimeIt(
              [&] { seeded->ProcessBatch(input.batch, {}); });
          best_static = std::min(best_static, t_static);
          best_first = std::min(best_first, t_first);
        }
        std::printf(" %9.2e+%9.2e ", best_static, best_first);
      }
      std::printf("\n");
    }
    bench::PrintRule(136);
  }

  // ConnectIt can also express Afforest's deterministic first-k sampling
  // (KOutVariant::kAfforest); show it next to the GAPBS Afforest baseline
  // for an apples-to-apples comparison of the frameworks. Both sides run
  // on plain CSR regardless of the table's representation columns (the
  // baseline supports nothing else).
  std::printf(
      "\nConnectIt with afforest-style k-out (vs GAPBS Afforest row):\n");
  {
    SamplingConfig config = SamplingConfig::KOut();
    config.kout.variant = KOutVariant::kAfforest;
    Connectivity index(Connectivity::Spec()
                           .Algorithm(DefaultVariant().descriptor)
                           .Sampling(config));
    for (size_t g = 0; g < suite.size(); ++g) {
      const GraphHandle csr(suite[g].graph);
      const double t = bench::TimeBest([&] { index.Build(csr); }, 2);
      std::printf("  %-8s %.2e (GAPBS Afforest: %.2e)\n",
                  suite[g].name.c_str(), t, others["GAPBS (Afforest)"][g]);
    }
  }
  return 0;
}
