// Reproduces Table 3: running times of the ConnectIt finish algorithms
// under No Sampling / k-out / BFS / LDD sampling on every suite graph, plus
// the "Other Systems" baselines. The fastest entry per (group, graph) is
// marked '*' and the fastest per graph overall '**', mirroring the paper's
// green/bold highlighting.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/afforest.h"
#include "src/baselines/bfscc.h"
#include "src/baselines/gapbs_sv.h"
#include "src/baselines/workefficient_cc.h"
#include "src/core/registry.h"

namespace {

using namespace connectit;

// Representative variant(s) per paper row. For rows with many internal
// options the paper reports the fastest; we time a small set of known-fast
// candidates and keep the minimum.
const std::vector<std::pair<std::string, std::vector<std::string>>> kRows = {
    {"Union-Early", {"Union-Early;FindNaive"}},
    {"Union-Hooks", {"Union-Hooks;FindNaive"}},
    {"Union-Async", {"Union-Async;FindNaive"}},
    {"Union-Rem-CAS",
     {"Union-Rem-CAS;FindNaive;SplitAtomicOne",
      "Union-Rem-CAS;FindNaive;HalveAtomicOne"}},
    {"Union-Rem-Lock", {"Union-Rem-Lock;FindNaive;SplitAtomicOne"}},
    {"Union-JTB", {"Union-JTB;FindTwoTrySplit"}},
    {"Liu-Tarjan", {"Liu-Tarjan;PRF", "Liu-Tarjan;CRFA"}},
    {"Shiloach-Vishkin", {"Shiloach-Vishkin"}},
    {"Label-Propagation", {"Label-Propagation"}},
    {"Stergiou", {"Stergiou"}},
};

const std::vector<std::pair<std::string, SamplingOption>> kGroups = {
    {"No Sampling", SamplingOption::kNone},
    {"k-out Sampling", SamplingOption::kKOut},
    {"BFS Sampling", SamplingOption::kBfs},
    {"LDD Sampling", SamplingOption::kLdd},
};

}  // namespace

int main() {
  const auto suite = bench::Suite();
  // One GraphHandle per suite graph: the ConnectIt rows below are
  // representation-generic (CONNECTIT_BENCH_REPR=compressed|coo reruns the
  // whole table on the byte-coded or COO edge-list format); the "Other
  // Systems" baselines are CSR-only and always run on the plain graphs.
  std::vector<GraphHandle> handles;
  for (const auto& bg : suite) handles.push_back(bench::MakeBenchHandle(bg.graph));
  bench::PrintTitle(
      "Table 3: ConnectIt running times (s); '*' fastest in group, "
      "'**' fastest overall per graph");
  std::printf("ConnectIt representation: %s\n",
              handles.empty() ? "csr" : handles.front().representation_name());

  // times[group][row][graph]
  std::map<std::string, std::map<std::string, std::vector<double>>> times;
  std::vector<double> best_per_graph(suite.size(), 1e300);

  for (const auto& [group_name, sampling] : kGroups) {
    SamplingConfig config;
    config.option = sampling;
    for (const auto& [row_name, variant_names] : kRows) {
      std::vector<double>& row = times[group_name][row_name];
      row.assign(suite.size(), 1e300);
      for (const std::string& vn : variant_names) {
        const Variant* v = FindVariant(vn);
        if (v == nullptr) continue;
        for (size_t g = 0; g < suite.size(); ++g) {
          const double t = bench::TimeBest(
              [&] { v->run(handles[g], config); }, 2);
          row[g] = std::min(row[g], t);
          best_per_graph[g] = std::min(best_per_graph[g], row[g]);
        }
      }
    }
  }

  // Other systems (static baselines, no sampling groups).
  std::map<std::string, std::vector<double>> others;
  const std::vector<
      std::pair<std::string, std::function<std::vector<NodeId>(const Graph&)>>>
      other_algos = {
          {"BFSCC", [](const Graph& g) { return BfsCC(g); }},
          {"WorkefficientCC",
           [](const Graph& g) { return WorkEfficientCC(g); }},
          {"GAPBS (Shiloach-Vishkin)",
           [](const Graph& g) { return GapbsShiloachVishkin(g); }},
          {"GAPBS (Afforest)", [](const Graph& g) { return AfforestCC(g); }},
      };
  for (const auto& [name, fn] : other_algos) {
    std::vector<double>& row = others[name];
    row.assign(suite.size(), 0.0);
    for (size_t g = 0; g < suite.size(); ++g) {
      row[g] = bench::TimeBest([&] { fn(suite[g].graph); }, 2);
    }
  }

  // Print.
  std::printf("%-18s %-26s", "Group", "Algorithm");
  for (const auto& bg : suite) std::printf(" %11s", bg.name.c_str());
  std::printf("\n");
  bench::PrintRule();
  for (const auto& [group_name, sampling] : kGroups) {
    (void)sampling;
    // Fastest per column within the group.
    std::vector<double> group_best(suite.size(), 1e300);
    for (const auto& [row_name, row] : times[group_name]) {
      for (size_t g = 0; g < suite.size(); ++g) {
        group_best[g] = std::min(group_best[g], row[g]);
      }
    }
    for (const auto& [row_name, variant_names] : kRows) {
      const std::vector<double>& row = times[group_name][row_name];
      std::printf("%-18s %-26s", group_name.c_str(), row_name.c_str());
      for (size_t g = 0; g < suite.size(); ++g) {
        const char* mark = "";
        if (row[g] <= best_per_graph[g]) {
          mark = "**";
        } else if (row[g] <= group_best[g]) {
          mark = "*";
        }
        std::printf(" %9.2e%-2s", row[g], mark);
      }
      std::printf("\n");
    }
    bench::PrintRule();
  }
  for (const auto& [name, fn] : other_algos) {
    (void)fn;
    std::printf("%-18s %-26s", "Other Systems", name.c_str());
    for (size_t g = 0; g < suite.size(); ++g) {
      std::printf(" %9.2e  ", others[name][g]);
    }
    std::printf("\n");
  }
  bench::PrintRule();

  // Paper-shape summary: speedup of the fastest sampled ConnectIt entry
  // over the fastest unsampled entry, and over the fastest other system.
  std::printf("\nPer-graph summary (paper §4.2-4.3 claims):\n");
  for (size_t g = 0; g < suite.size(); ++g) {
    double best_nosample = 1e300;
    for (const auto& [row_name, row] : times["No Sampling"]) {
      best_nosample = std::min(best_nosample, row[g]);
    }
    double best_other = 1e300;
    for (const auto& [name, row] : others) {
      best_other = std::min(best_other, row[g]);
    }
    std::printf(
        "  %-8s fastest-sampled=%.2e  vs no-sampling: %.2fx  vs "
        "other-systems: %.2fx\n",
        suite[g].name.c_str(), best_per_graph[g],
        best_nosample / best_per_graph[g], best_other / best_per_graph[g]);
  }

  // ConnectIt can also express Afforest's deterministic first-k sampling
  // (KOutVariant::kAfforest); show it next to the GAPBS Afforest baseline
  // for an apples-to-apples comparison of the frameworks.
  std::printf(
      "\nConnectIt with afforest-style k-out (vs GAPBS Afforest row):\n");
  {
    const Variant* v = FindVariant("Union-Rem-CAS;FindNaive;SplitAtomicOne");
    SamplingConfig config = SamplingConfig::KOut();
    config.kout.variant = KOutVariant::kAfforest;
    for (size_t g = 0; g < suite.size(); ++g) {
      const double t =
          bench::TimeBest([&] { v->run(handles[g], config); }, 2);
      std::printf("  %-8s %.2e (GAPBS Afforest: %.2e)\n",
                  suite[g].name.c_str(), t, others["GAPBS (Afforest)"][g]);
    }
  }
  return 0;
}
