// Reproduces Figures 3, 13, 14, 15: heatmaps of relative union-find variant
// performance (slowdown vs. the fastest variant), averaged over the suite,
// for each sampling mode. Rows are find options, columns are unite(+splice)
// groups, exactly as in the paper's figures.

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/registry.h"
#include "src/parallel/numa.h"

namespace {

using namespace connectit;

struct BenchInput {
  std::string name;
  GraphHandle handle;
};

void RunHeatmap(const std::vector<BenchInput>& suite, SamplingOption sampling,
                const char* title) {
  SamplingConfig config;
  config.option = sampling;

  // Geometric-mean slowdown per variant across the suite.
  std::map<std::string, std::map<std::string, double>> cell;  // find -> group
  std::set<std::string> groups;
  std::set<std::string> finds;

  // Per-graph times.
  std::map<std::string, std::vector<double>> variant_times;
  for (const Variant* v : VariantsOfFamily(AlgorithmFamily::kUnionFind)) {
    std::vector<double>& row = variant_times[v->name];
    for (const auto& bg : suite) {
      row.push_back(bench::TimeBest([&] { v->run(bg.handle, config); }, 2));
    }
  }
  // Per-graph minimum, then relative slowdowns averaged geometrically.
  const size_t num_graphs = suite.size();
  std::vector<double> best(num_graphs, 1e300);
  for (const auto& [name, row] : variant_times) {
    for (size_t g = 0; g < num_graphs; ++g) best[g] = std::min(best[g], row[g]);
  }
  for (const Variant* v : VariantsOfFamily(AlgorithmFamily::kUnionFind)) {
    const auto& row = variant_times[v->name];
    double log_sum = 0;
    for (size_t g = 0; g < num_graphs; ++g) {
      log_sum += std::log(row[g] / best[g]);
    }
    const double slowdown = std::exp(log_sum / static_cast<double>(num_graphs));
    cell[v->find_name][v->group] = slowdown;
    groups.insert(v->group);
    finds.insert(v->find_name);
  }

  bench::PrintTitle(title);
  std::printf("%-16s", "");
  for (const auto& g : groups) std::printf(" %-30s", g.c_str());
  std::printf("\n");
  for (const auto& f : finds) {
    std::printf("%-16s", f.c_str());
    for (const auto& g : groups) {
      auto it = cell[f].find(g);
      if (it == cell[f].end()) {
        std::printf(" %-30s", "-");
      } else {
        std::printf(" %-30.2f", it->second);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // The sweep is representation-generic: each suite graph becomes one
  // GraphHandle (plain CSR, byte-coded under
  // CONNECTIT_BENCH_REPR=compressed, or a COO edge list under
  // CONNECTIT_BENCH_REPR=coo) and every variant runs through it.
  const auto graphs = bench::SmallSuite();
  std::vector<BenchInput> suite;
  for (const auto& bg : graphs) {
    suite.push_back({bg.name, bench::MakeBenchHandle(bg.graph)});
  }
  std::printf("representation: %s\n",
              suite.empty() ? "csr" : suite.front().handle.representation_name());
  // The registry's NumaReplicated twins contribute their own
  // ";NumaReplicated" column groups. On one node they fall back to the
  // flat algorithm; set CONNECTIT_NUMA_NODES=k to emulate the replicas.
  std::printf("numa: %zu node(s), backend=%s\n",
              NumaTopology::Get().num_nodes(), NumaTopology::Get().backend());
  RunHeatmap(suite, SamplingOption::kNone,
             "Figure 3: union-find slowdowns vs fastest (No Sampling)");
  RunHeatmap(suite, SamplingOption::kKOut,
             "Figure 13: union-find slowdowns vs fastest (k-out Sampling)");
  RunHeatmap(suite, SamplingOption::kBfs,
             "Figure 14: union-find slowdowns vs fastest (BFS Sampling)");
  RunHeatmap(suite, SamplingOption::kLdd,
             "Figure 15: union-find slowdowns vs fastest (LDD Sampling)");
  std::printf(
      "\nExpected shape (paper): without sampling the spread is wide (up to\n"
      "~6x) with Union-Rem-CAS;Split/HalveAtomicOne fastest; with sampling\n"
      "all variants compress to within ~1.3x of the fastest.\n");
  return 0;
}
