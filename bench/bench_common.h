// Shared infrastructure for the paper-reproduction bench binaries.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation (see DESIGN.md §2 for the index) and prints it in the paper's
// row/series shape. The graph suite substitutes synthetic graphs for the
// paper's inputs (DESIGN.md §4); CONNECTIT_BENCH_SCALE=large grows them.

#ifndef CONNECTIT_BENCH_BENCH_COMMON_H_
#define CONNECTIT_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/graph/builder.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"

namespace connectit::bench {

inline bool LargeScale() {
  const char* env = std::getenv("CONNECTIT_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "large") == 0;
}

// CONNECTIT_BENCH_REPR=compressed|coo runs registry-driven benches on the
// byte-coded or COO edge-list representation instead of plain CSR — same
// variants, same sweep, different GraphHandle. On COO, edge-centric
// variants without sampling run natively (no CSR rebuild inside the run).
inline GraphRepresentation BenchRepr() {
  const char* env = std::getenv("CONNECTIT_BENCH_REPR");
  if (env == nullptr || std::strcmp(env, "csr") == 0) {
    return GraphRepresentation::kCsr;
  }
  if (std::strcmp(env, "compressed") == 0) {
    return GraphRepresentation::kCompressed;
  }
  if (std::strcmp(env, "coo") == 0) return GraphRepresentation::kCoo;
  // Fail fast: silently benchmarking CSR under a misspelled value would
  // mislabel every number in the run.
  std::fprintf(stderr,
               "error: unknown CONNECTIT_BENCH_REPR=%s "
               "(expected csr, compressed, or coo)\n",
               env);
  std::exit(2);
}

// The handle a registry-driven bench should pass to Variant::run for this
// suite graph: a plain view, an owning byte-coded encoding, or an owning
// COO edge list extracted from it.
inline GraphHandle MakeBenchHandle(const Graph& graph) {
  switch (BenchRepr()) {
    case GraphRepresentation::kCompressed: return GraphHandle::Compress(graph);
    case GraphRepresentation::kCoo:
      return GraphHandle::Adopt(ExtractEdges(graph));
    case GraphRepresentation::kCsr: break;
  }
  return GraphHandle(graph);
}

// Wall-clock seconds for one invocation of fn.
inline double TimeIt(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// Minimum over `reps` invocations (the usual benchmarking convention).
inline double TimeBest(const std::function<void()>& fn, int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) best = std::min(best, TimeIt(fn));
  return best;
}

struct BenchGraph {
  std::string name;
  Graph graph;
};

// The bench suite, mirroring the regimes of the paper's Table 2 inputs:
//   road      — high-diameter sparse grid           (road_usa analog)
//   social    — skewed low-diameter RMAT            (LiveJournal/Twitter)
//   dense     — uniform-degree denser Erdos-Renyi   (com-Orkut analog)
//   ba        — preferential attachment             (Friendster analog)
//   web       — many components + one massive blob  (ClueWeb/Hyperlink)
inline std::vector<BenchGraph> Suite() {
  const int s = LargeScale() ? 4 : 1;
  std::vector<BenchGraph> suite;
  suite.push_back({"road", GenerateGrid(512 * s, 512 * s)});
  suite.push_back(
      {"social", GenerateRmat(262144u * s, 2097152u * s, /*seed=*/42)});
  suite.push_back(
      {"dense", GenerateErdosRenyi(131072u * s, 2097152u * s, /*seed=*/43)});
  suite.push_back(
      {"ba", GenerateBarabasiAlbert(131072u * s, 12, /*seed=*/44)});
  suite.push_back({"web", GenerateComponentMixture(262144u * s, 24,
                                                   /*seed=*/45,
                                                   /*edges_per_vertex=*/16)});
  return suite;
}

// A smaller suite for exhaustive per-variant sweeps.
inline std::vector<BenchGraph> SmallSuite() {
  const int s = LargeScale() ? 4 : 1;
  std::vector<BenchGraph> suite;
  suite.push_back({"road", GenerateGrid(256 * s, 256 * s)});
  suite.push_back(
      {"social", GenerateRmat(65536u * s, 524288u * s, /*seed=*/42)});
  return suite;
}

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintTitle(const char* title) {
  std::printf("\n");
  PrintRule();
  std::printf("%s\n", title);
  PrintRule();
}

}  // namespace connectit::bench

#endif  // CONNECTIT_BENCH_BENCH_COMMON_H_
