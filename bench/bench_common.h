// Shared infrastructure for the paper-reproduction bench binaries.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation (see DESIGN.md §2 for the index) and prints it in the paper's
// row/series shape. The graph suite substitutes synthetic graphs for the
// paper's inputs (DESIGN.md §4); CONNECTIT_BENCH_SCALE=large grows them.

#ifndef CONNECTIT_BENCH_BENCH_COMMON_H_
#define CONNECTIT_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/graph/sharded.h"

namespace connectit::bench {

inline bool LargeScale() {
  const char* env = std::getenv("CONNECTIT_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "large") == 0;
}

// CONNECTIT_BENCH_REPR=compressed|coo|sharded|mapped runs registry-driven
// benches on the byte-coded, COO edge-list, sharded-CSR, or mmap-container
// representation instead of plain CSR — same variants, same sweep,
// different GraphHandle. On COO, edge-centric variants without sampling run
// natively (no CSR rebuild inside the run); on sharded and mapped,
// everything is native (mapped serves zero-copy from a temp .cgc).
inline GraphRepresentation BenchRepr() {
  const char* env = std::getenv("CONNECTIT_BENCH_REPR");
  if (env == nullptr || std::strcmp(env, "csr") == 0) {
    return GraphRepresentation::kCsr;
  }
  if (std::strcmp(env, "compressed") == 0) {
    return GraphRepresentation::kCompressed;
  }
  if (std::strcmp(env, "coo") == 0) return GraphRepresentation::kCoo;
  if (std::strcmp(env, "sharded") == 0) return GraphRepresentation::kSharded;
  if (std::strcmp(env, "mapped") == 0) return GraphRepresentation::kMapped;
  // Fail fast: silently benchmarking CSR under a misspelled value would
  // mislabel every number in the run.
  std::fprintf(stderr,
               "error: unknown CONNECTIT_BENCH_REPR=%s "
               "(expected csr, compressed, coo, sharded, or mapped)\n",
               env);
  std::exit(2);
}

// Shard count for CONNECTIT_BENCH_REPR=sharded runs:
// CONNECTIT_BENCH_SHARDS=<P> overrides the default (hardware concurrency).
// Fail fast on anything but a clean positive integer — like BenchRepr, a
// silently misparsed value would mislabel every number in the run.
inline size_t BenchShards() {
  const char* env = std::getenv("CONNECTIT_BENCH_SHARDS");
  if (env == nullptr) return 0;  // ShardedGraph::Partition's default
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value <= 0) {
    std::fprintf(stderr, "error: CONNECTIT_BENCH_SHARDS=%s is not a positive "
                 "shard count\n", env);
    std::exit(2);
  }
  return static_cast<size_t>(value);
}

// The handle a registry-driven bench should pass to Variant::run for this
// suite graph, in the given representation: a plain view, an owning
// byte-coded encoding, an owning COO edge list extracted from it, or an
// owning sharded partition of it.
inline GraphHandle MakeBenchHandle(GraphRepresentation repr,
                                   const Graph& graph) {
  switch (repr) {
    case GraphRepresentation::kCompressed: return GraphHandle::Compress(graph);
    case GraphRepresentation::kCoo:
      return GraphHandle::Adopt(ExtractEdges(graph));
    case GraphRepresentation::kSharded:
      return GraphHandle::Shard(graph, BenchShards());
    case GraphRepresentation::kMapped:
      return GraphHandle::MapTempOrDie(graph);
    case GraphRepresentation::kCsr: break;
  }
  return GraphHandle(graph);
}

// As above, in the representation CONNECTIT_BENCH_REPR selects.
inline GraphHandle MakeBenchHandle(const Graph& graph) {
  return MakeBenchHandle(BenchRepr(), graph);
}

// Wall-clock seconds for one invocation of fn.
inline double TimeIt(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// Minimum over `reps` invocations (the usual benchmarking convention).
inline double TimeBest(const std::function<void()>& fn, int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) best = std::min(best, TimeIt(fn));
  return best;
}

struct BenchGraph {
  std::string name;
  Graph graph;
};

// The bench suite, mirroring the regimes of the paper's Table 2 inputs:
//   road      — high-diameter sparse grid           (road_usa analog)
//   social    — skewed low-diameter RMAT            (LiveJournal/Twitter)
//   dense     — uniform-degree denser Erdos-Renyi   (com-Orkut analog)
//   ba        — preferential attachment             (Friendster analog)
//   web       — many components + one massive blob  (ClueWeb/Hyperlink)
inline std::vector<BenchGraph> Suite() {
  const int s = LargeScale() ? 4 : 1;
  std::vector<BenchGraph> suite;
  suite.push_back({"road", GenerateGrid(512 * s, 512 * s)});
  suite.push_back(
      {"social", GenerateRmat(262144u * s, 2097152u * s, /*seed=*/42)});
  suite.push_back(
      {"dense", GenerateErdosRenyi(131072u * s, 2097152u * s, /*seed=*/43)});
  suite.push_back(
      {"ba", GenerateBarabasiAlbert(131072u * s, 12, /*seed=*/44)});
  suite.push_back({"web", GenerateComponentMixture(262144u * s, 24,
                                                   /*seed=*/45,
                                                   /*edges_per_vertex=*/16)});
  return suite;
}

// A smaller suite for exhaustive per-variant sweeps.
inline std::vector<BenchGraph> SmallSuite() {
  const int s = LargeScale() ? 4 : 1;
  std::vector<BenchGraph> suite;
  suite.push_back({"road", GenerateGrid(256 * s, 256 * s)});
  suite.push_back(
      {"social", GenerateRmat(65536u * s, 524288u * s, /*seed=*/42)});
  return suite;
}

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintTitle(const char* title) {
  std::printf("\n");
  PrintRule();
  std::printf("%s\n", title);
  PrintRule();
}

// ---- streaming harness (shared by the bench_stream_* binaries and
// bench_stinger_compare) ----

// Node count for the synthetic update streams, scaled like the suite.
inline NodeId StreamNodes(NodeId large = 1u << 20, NodeId small = 1u << 16) {
  return LargeScale() ? large : small;
}

// Cuts `edges` into consecutive batches of `batch_size` (last may be short).
inline std::vector<std::vector<Edge>> SliceBatches(
    const std::vector<Edge>& edges, size_t batch_size) {
  std::vector<std::vector<Edge>> batches;
  for (size_t start = 0; start < edges.size(); start += batch_size) {
    const size_t end = std::min(start + batch_size, edges.size());
    batches.emplace_back(edges.begin() + start, edges.begin() + end);
  }
  return batches;
}

// Applies every batch as pure updates; returns total wall-clock seconds.
inline double DriveBatches(StreamingConnectivity& alg,
                           const std::vector<std::vector<Edge>>& batches) {
  return TimeIt([&] {
    for (const std::vector<Edge>& batch : batches) alg.ProcessBatch(batch, {});
  });
}

// Splits an update stream for the static-to-streaming handoff: everything
// but the last `holdout` fraction is the bulk-loaded base graph; the tail
// arrives as streamed batches.
struct HandoffSplit {
  EdgeList base;
  std::vector<Edge> tail;
};

inline HandoffSplit SplitForHandoff(const EdgeList& stream,
                                    double holdout = 0.25) {
  HandoffSplit split;
  const size_t cut =
      stream.size() - static_cast<size_t>(stream.size() * holdout);
  split.base.num_nodes = stream.num_nodes;
  split.base.edges.assign(stream.edges.begin(), stream.edges.begin() + cut);
  split.tail.assign(stream.edges.begin() + cut, stream.edges.end());
  return split;
}

// The GraphHandle a warm-start static pass should run on, honoring
// CONNECTIT_BENCH_REPR: a COO view of `base` (native for edge-centric
// variants), an owning CSR, an owning byte-coded CSR, an owning sharded
// partition, or a zero-copy mapping of a temp .cgc container.
inline GraphHandle MakeSeedHandle(const EdgeList& base) {
  switch (BenchRepr()) {
    case GraphRepresentation::kCompressed:
      return GraphHandle::Compress(BuildGraph(base));
    case GraphRepresentation::kCsr:
      return GraphHandle::Adopt(BuildGraph(base));
    case GraphRepresentation::kSharded:
      return GraphHandle::Shard(BuildGraph(base), BenchShards());
    case GraphRepresentation::kMapped:
      return GraphHandle::MapTempOrDie(BuildGraph(base));
    case GraphRepresentation::kCoo: break;
  }
  return GraphHandle(base);
}

// Cold-vs-seeded comparison for one variant over one update stream: the
// cold structure streams base+tail in batches from an empty start; the
// seeded structure bulk-loads the base with the variant's static pass
// (StreamingSeed::FromStatic) and streams only the tail.
struct HandoffTiming {
  double cold_total = 0;   // cold: base + tail, all batched
  double static_pass = 0;  // seeded: bulk static pass over the base
  double seeded_tail = 0;  // seeded: streaming the tail batches
  double seeded_total() const { return static_pass + seeded_tail; }
};

inline HandoffTiming MeasureHandoff(const Variant& v, const EdgeList& stream,
                                    size_t batch_size,
                                    double holdout = 0.25) {
  const HandoffSplit split = SplitForHandoff(stream, holdout);
  const auto base_batches = SliceBatches(split.base.edges, batch_size);
  const auto tail_batches = SliceBatches(split.tail, batch_size);
  HandoffTiming t;
  {
    auto cold = v.make_streaming(StreamingSeed::Cold(stream.num_nodes));
    t.cold_total = DriveBatches(*cold, base_batches) +
                   DriveBatches(*cold, tail_batches);
  }
  {
    std::unique_ptr<StreamingConnectivity> seeded;
    t.static_pass = TimeIt([&] {
      // Building the seed representation (BuildGraph / byte-coding for
      // csr/compressed, free for the COO view) is timed too: the seeded
      // column must carry every cost the cold path avoids.
      const GraphHandle handle = MakeSeedHandle(split.base);
      seeded = v.make_streaming(StreamingSeed::FromStatic(handle));
    });
    t.seeded_tail = DriveBatches(*seeded, tail_batches);
  }
  return t;
}

// Prints one row of a cold-vs-seeded table (see MeasureHandoff).
inline void PrintHandoffRow(const char* label, const HandoffTiming& t) {
  std::printf("%-44s %12.3e %12.3e %12.3e %12.3e %7.2fx\n", label,
              t.cold_total, t.static_pass, t.seeded_tail, t.seeded_total(),
              t.cold_total / t.seeded_total());
}

inline void PrintHandoffHeader() {
  std::printf("%-44s %12s %12s %12s %12s %8s\n", "Algorithm", "Cold(s)",
              "Static(s)", "Tail(s)", "Seeded(s)", "Win");
  PrintRule(110);
}


}  // namespace connectit::bench

#endif  // CONNECTIT_BENCH_BENCH_COMMON_H_
