// Reproduces Figures 11 and 12: relative performance of the 16 Liu-Tarjan
// variants (No Sampling), and the parent-array access proxy vs. running
// time split by alter option (the paper's LLC-miss analysis).

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/registry.h"
#include "src/stats/counters.h"

int main() {
  using namespace connectit;
  const auto suite = bench::SmallSuite();

  // ---- Figure 11: geometric-mean slowdown per variant ----
  std::map<std::string, std::vector<double>> times;
  for (const Variant* v : VariantsOfFamily(AlgorithmFamily::kLiuTarjan)) {
    for (const auto& bg : suite) {
      times[v->group].push_back(
          bench::TimeBest([&] { v->run(bg.graph, {}); }, 2));
    }
  }
  std::vector<double> best(suite.size(), 1e300);
  for (const auto& [name, row] : times) {
    for (size_t g = 0; g < row.size(); ++g) best[g] = std::min(best[g], row[g]);
  }
  bench::PrintTitle(
      "Figure 11: Liu-Tarjan variant slowdowns vs fastest (No Sampling)");
  std::printf("%-8s %-10s\n", "Variant", "Slowdown");
  for (const auto& [name, row] : times) {
    double log_sum = 0;
    for (size_t g = 0; g < row.size(); ++g) log_sum += std::log(row[g] / best[g]);
    std::printf("%-8s %-10.2f\n", name.c_str(),
                std::exp(log_sum / static_cast<double>(row.size())));
  }

  // ---- Figure 12: access proxy vs time, alter vs no_alter ----
  bench::PrintTitle(
      "Figure 12: parent-array accesses (LLC proxy) vs running time");
  std::printf("%-8s %-10s %-14s %-16s %-10s\n", "Variant", "Graph",
              "Time(s)", "ParentAccesses", "Alter");
  for (const Variant* v : VariantsOfFamily(AlgorithmFamily::kLiuTarjan)) {
    const bool alter = v->group.size() == 4;  // codes ending in 'A'
    for (const auto& bg : suite) {
      stats::ScopedEnable scope;
      const double t = bench::TimeIt([&] { v->run(bg.graph, {}); });
      const stats::Snapshot s = stats::Read();
      std::printf("%-8s %-10s %-14.4e %-16llu %-10s\n", v->group.c_str(),
                  bg.name.c_str(), t,
                  static_cast<unsigned long long>(s.parent_reads +
                                                  s.parent_writes),
                  alter ? "alter" : "no_alter");
    }
  }
  std::printf(
      "\nExpected shape (paper): running time correlates strongly with the\n"
      "number of parent-array accesses (Pearson ~0.98 for LLC misses).\n");
  return 0;
}
