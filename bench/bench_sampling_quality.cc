// Reproduces Tables 6 and 7: per-scheme sampling time, coverage of the most
// frequent cluster, and fraction of inter-component edges remaining, for
// BFS / LDD / k-out(hybrid) sampling on every suite graph.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/connectit.h"
#include "src/core/sampling.h"

namespace {

using namespace connectit;

struct Row {
  double seconds = 0;
  SamplingQuality quality;
};

template <typename SampleFn>
Row Measure(const Graph& graph, SampleFn&& fn) {
  Row row;
  std::vector<NodeId> labels;
  row.seconds = bench::TimeBest(
      [&] {
        labels = IdentityLabels(graph.num_nodes());
        fn(labels);
      },
      2);
  row.quality = MeasureSamplingQuality(graph, labels);
  return row;
}

}  // namespace

int main() {
  const auto suite = bench::Suite();

  bench::PrintTitle(
      "Table 6: BFS Sampling and LDD Sampling quality (time, coverage, "
      "inter-component edge fraction)");
  std::printf("%-10s %10s %9s %9s %10s %9s %9s\n", "Graph", "BFS(s)",
              "BFS Cov", "BFS IC", "LDD(s)", "LDD Cov", "LDD IC");
  for (const auto& [name, graph] : suite) {
    const Row bfs = Measure(graph, [&](std::vector<NodeId>& labels) {
      BfsSample(graph, BfsSampleOptions{}, labels);
    });
    const Row ldd = Measure(graph, [&](std::vector<NodeId>& labels) {
      LddSample(graph, LddSampleOptions{}, labels);
    });
    std::printf("%-10s %10.2e %8.1f%% %8.3f%% %10.2e %8.1f%% %8.3f%%\n",
                name.c_str(), bfs.seconds, 100 * bfs.quality.coverage,
                100 * bfs.quality.intercomponent_fraction, ldd.seconds,
                100 * ldd.quality.coverage,
                100 * ldd.quality.intercomponent_fraction);
  }

  bench::PrintTitle("Table 7: k-out (hybrid, k=2) sampling quality");
  std::printf("%-10s %14s %14s %14s %12s\n", "Graph", "KOut(Hybrid)(s)",
              "Coverage", "IC", "Clusters");
  for (const auto& [name, graph] : suite) {
    const Row kout = Measure(graph, [&](std::vector<NodeId>& labels) {
      KOutSample(graph, KOutOptions{}, labels);
    });
    std::printf("%-10s %14.2e %13.1f%% %13.4f%% %12u\n", name.c_str(),
                kout.seconds, 100 * kout.quality.coverage,
                100 * kout.quality.intercomponent_fraction,
                kout.quality.num_clusters);
  }
  std::printf(
      "\nExpected shape (paper): on low-diameter graphs all schemes cover\n"
      ">90%% of vertices leaving <1%% inter-component edges; far fewer\n"
      "inter-component edges remain after k-out than the n/k bound.\n");
  return 0;
}
