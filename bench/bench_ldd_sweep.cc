// Reproduces Figures 19, 20, 21: LDD sampling as a function of beta, with
// vertex permutation enabled and disabled — sampling time, fraction of
// inter-component edges, and coverage of the largest cluster.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/connectit.h"
#include "src/core/sampling.h"

int main() {
  using namespace connectit;
  const auto suite = bench::Suite();
  const double betas[] = {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0};

  bench::PrintTitle(
      "Figures 19-21: LDD sampling sweep over beta (time / inter-component "
      "fraction / coverage), permute on and off");
  std::printf("%-10s %6s %9s %12s %12s %12s %10s\n", "Graph", "Beta",
              "Permute", "Time(s)", "PctIC", "Coverage", "Clusters");
  for (const auto& [name, graph] : suite) {
    for (const bool permute : {false, true}) {
      for (const double beta : betas) {
        LddSampleOptions options;
        options.beta = beta;
        options.permute = permute;
        std::vector<NodeId> labels;
        const double t = bench::TimeBest(
            [&] {
              labels = IdentityLabels(graph.num_nodes());
              LddSample(graph, options, labels);
            },
            2);
        const SamplingQuality q = MeasureSamplingQuality(graph, labels);
        std::printf("%-10s %6.2f %9s %12.4e %11.4f%% %11.2f%% %10u\n",
                    name.c_str(), beta, permute ? "permute" : "no_permute", t,
                    100 * q.intercomponent_fraction, 100 * q.coverage,
                    q.num_clusters);
      }
    }
  }
  std::printf(
      "\nExpected shape (paper): inter-component edges grow roughly\n"
      "linearly with beta on the road graph; coverage is tiny on the road\n"
      "graph and large on low-diameter graphs; high beta can increase the\n"
      "running time again on social graphs (more clusters start up).\n");
  return 0;
}
