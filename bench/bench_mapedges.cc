// Reproduces Table 8: the MapEdges and GatherEdges primitives vs the
// fastest ConnectIt configuration with and without sampling. GatherEdges is
// the empirical lower bound for any algorithm that performs an indirect
// read per edge.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/edge_primitives.h"
#include "src/core/registry.h"

int main() {
  using namespace connectit;
  const Variant* v = &DefaultVariant();

  bench::PrintTitle(
      "Table 8: MapEdges / GatherEdges vs fastest ConnectIt (seconds)");
  std::printf("%-10s %12s %14s %14s %14s\n", "Graph", "MapEdges",
              "GatherEdges", "CC(NoSample)", "CC(Sample)");
  for (const auto& [name, graph] : bench::Suite()) {
    const double map_t = bench::TimeBest([&] { MapEdges(graph); }, 3);
    const double gather_t = bench::TimeBest([&] { GatherEdges(graph); }, 3);
    const double cc_plain =
        bench::TimeBest([&] { v->run(graph, SamplingConfig::None()); }, 2);
    const double cc_sampled =
        bench::TimeBest([&] { v->run(graph, SamplingConfig::KOut()); }, 2);
    std::printf("%-10s %12.3e %14.3e %14.3e %14.3e\n", name.c_str(), map_t,
                gather_t, cc_plain, cc_sampled);
  }
  std::printf(
      "\nExpected shape (paper): GatherEdges is several times slower than\n"
      "MapEdges (indirect reads); sampled ConnectIt is close to — sometimes\n"
      "faster than — GatherEdges, i.e. within the practical lower bound.\n");
  return 0;
}
