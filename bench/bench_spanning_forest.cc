// Reproduces the paper's §1/§3.4 spanning-forest claim: computing a
// spanning forest costs on average ~23.7% more than connectivity alone,
// with the same performance trends across variants.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/registry.h"

int main() {
  using namespace connectit;
  const std::vector<std::string> algos = {
      "Union-Rem-CAS;FindNaive;SplitAtomicOne",
      "Union-Async;FindNaive",
      "Union-Hooks;FindNaive",
      "Union-Rem-Lock;FindNaive;SplitAtomicOne",
      "Shiloach-Vishkin",
      "Liu-Tarjan;PRF",
  };
  bench::PrintTitle(
      "Spanning forest overhead vs connectivity (paper: ~23.7% on average)");
  std::printf("%-44s %-10s %12s %12s %10s\n", "Algorithm", "Graph", "CC(s)",
              "SF(s)", "Overhead");
  double sum_overhead = 0;
  size_t count = 0;
  for (const std::string& name : algos) {
    const Variant* v = &GetVariantOrDie(name);
    if (!v->root_based) continue;
    for (const auto& [gname, graph] : bench::Suite()) {
      const double cc = bench::TimeBest([&] { v->run(graph, {}); }, 2);
      const double sf =
          bench::TimeBest([&] { v->run_forest(graph, {}); }, 2);
      const double overhead = (sf - cc) / cc * 100.0;
      sum_overhead += overhead;
      ++count;
      std::printf("%-44s %-10s %12.3e %12.3e %9.1f%%\n", name.c_str(),
                  gname.c_str(), cc, sf, overhead);
    }
  }
  std::printf("\nAverage overhead: %.1f%% (paper: 23.7%%)\n",
              sum_overhead / static_cast<double>(count));
  return 0;
}
