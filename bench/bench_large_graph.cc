// Reproduces Table 1 (in substituted form): connectivity on the largest
// graph this environment can synthesize, comparing every system built in
// this repository — the stand-in for the paper's Hyperlink2012 comparison
// against external/distributed systems (which require the proprietary
// WebDataCommons crawl and a 1TB machine; see DESIGN.md §4).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/afforest.h"
#include "src/baselines/bfscc.h"
#include "src/baselines/gapbs_sv.h"
#include "src/baselines/seq_cc.h"
#include "src/baselines/workefficient_cc.h"
#include "src/core/registry.h"
#include "src/graph/compressed.h"
#include "src/parallel/numa.h"
#include "src/stats/counters.h"

int main() {
  using namespace connectit;
  const NodeId n = bench::LargeScale() ? (1u << 22) : (1u << 19);
  const EdgeId m = 8ull * n;
  std::printf("Generating RMAT graph: n=%u, m=%llu ...\n", n,
              static_cast<unsigned long long>(m));
  const Graph graph = GenerateRmat(n, m, /*seed=*/2012);

  bench::PrintTitle(
      "Table 1 (substituted): all systems on the largest local graph");
  std::printf("%-36s %12s %10s\n", "System", "Time(s)", "vs best");

  struct Entry {
    std::string name;
    double time;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"Sequential union-find",
       bench::TimeIt([&] { SequentialUnionFindCC(graph); })});
  entries.push_back({"BFSCC (Ligra)", bench::TimeIt([&] { BfsCC(graph); })});
  entries.push_back({"WorkefficientCC (Shun et al.)",
                     bench::TimeIt([&] { WorkEfficientCC(graph); })});
  entries.push_back({"GAPBS (Shiloach-Vishkin)",
                     bench::TimeIt([&] { GapbsShiloachVishkin(graph); })});
  entries.push_back(
      {"GAPBS (Afforest)", bench::TimeIt([&] { AfforestCC(graph); })});

  const Variant* fastest = &DefaultVariant();
  entries.push_back(
      {"ConnectIt (no sampling)",
       bench::TimeIt([&] { fastest->run(graph, SamplingConfig::None()); })});
  entries.push_back(
      {"ConnectIt (k-out sampling)",
       bench::TimeIt([&] { fastest->run(graph, SamplingConfig::KOut()); })});
  {
    SamplingConfig afforest_kout = SamplingConfig::KOut();
    afforest_kout.kout.variant = KOutVariant::kAfforest;
    entries.push_back(
        {"ConnectIt (k-out, afforest rule)",
         bench::TimeIt([&] { fastest->run(graph, afforest_kout); })});
  }
  entries.push_back(
      {"ConnectIt (BFS sampling)",
       bench::TimeIt([&] { fastest->run(graph, SamplingConfig::Bfs()); })});
  entries.push_back(
      {"ConnectIt (LDD sampling)",
       bench::TimeIt([&] { fastest->run(graph, SamplingConfig::Ldd()); })});

  // Memory-placement axis: the default variant's NumaReplicated twin, flat
  // vs replicated on the same graph. On a single-node topology the twin
  // falls back to flat (the locality counters stay at 0); emulate nodes
  // with CONNECTIT_NUMA_NODES=k to exercise the replica paths.
  {
    VariantDescriptor twin = fastest->descriptor;
    twin.placement = PlacementOption::kNumaReplicated;
    if (const Variant* replicated = FindVariant(twin)) {
      const stats::LocalitySnapshot l0 = stats::ReadLocality();
      entries.push_back(
          {"ConnectIt (NUMA-replicated, no sampling)",
           bench::TimeIt(
               [&] { replicated->run(graph, SamplingConfig::None()); })});
      entries.push_back(
          {"ConnectIt (NUMA-replicated, k-out)",
           bench::TimeIt(
               [&] { replicated->run(graph, SamplingConfig::KOut()); })});
      const stats::LocalitySnapshot l1 = stats::ReadLocality();
      std::printf(
          "NUMA: %zu node(s) (%s); locality over replicated runs: "
          "%llu local hint hops, %llu cross-node root hops, "
          "%llu hint compressions\n",
          NumaTopology::Get().num_nodes(), NumaTopology::Get().backend(),
          static_cast<unsigned long long>(l1.local_find_depth -
                                          l0.local_find_depth),
          static_cast<unsigned long long>(l1.cross_node_find_depth -
                                          l0.cross_node_find_depth),
          static_cast<unsigned long long>(l1.cross_node_compressions -
                                          l0.cross_node_compressions));
    }
  }

  double best = 1e300;
  for (const Entry& e : entries) best = std::min(best, e.time);
  for (const Entry& e : entries) {
    std::printf("%-36s %12.3f %9.2fx\n", e.name.c_str(), e.time,
                e.time / best);
  }

  // Compression footprint (Table 1 discusses the memory side; the paper's
  // byte-coded graphs are ~2.7x smaller than raw).
  const CompressedGraph cg = CompressedGraph::Encode(graph);
  const double raw_gb =
      static_cast<double>(graph.num_arcs() * sizeof(NodeId)) / 1e9;
  const double compressed_gb = static_cast<double>(cg.byte_size()) / 1e9;
  std::printf(
      "\nGraph storage: raw CSR edges %.3f GB, byte-coded %.3f GB "
      "(%.2fx smaller)\n",
      raw_gb, compressed_gb, raw_gb / compressed_gb);
  std::printf(
      "\nExpected shape (paper): the fastest sampled ConnectIt variant beats\n"
      "every other system (3.1x over the prior record on Hyperlink2012).\n");
  return 0;
}
