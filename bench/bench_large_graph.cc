// Reproduces Table 1 (in substituted form): connectivity on the largest
// graph this environment can synthesize, comparing every system built in
// this repository — the stand-in for the paper's Hyperlink2012 comparison
// against external/distributed systems (which require the proprietary
// WebDataCommons crawl and a 1TB machine; see DESIGN.md §4).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/afforest.h"
#include "src/baselines/bfscc.h"
#include "src/baselines/gapbs_sv.h"
#include "src/baselines/seq_cc.h"
#include "src/baselines/workefficient_cc.h"
#include "src/core/registry.h"
#include "src/graph/compressed.h"
#include "src/graph/container.h"
#include "src/graph/graph_handle.h"
#include "src/parallel/numa.h"
#include "src/stats/counters.h"

int main(int argc, char** argv) {
  using namespace connectit;
  // --container-out=PATH: where the cold-load section writes its
  // machine-readable artifact (for tools/bench_trajectory.py append).
  const char* container_out = "BENCH_container.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--container-out=", 16) == 0) {
      container_out = argv[i] + 16;
    } else {
      std::fprintf(stderr, "usage: %s [--container-out=PATH]\n", argv[0]);
      return 2;
    }
  }
  const NodeId n = bench::LargeScale() ? (1u << 22) : (1u << 19);
  const EdgeId m = 8ull * n;
  std::printf("Generating RMAT graph: n=%u, m=%llu ...\n", n,
              static_cast<unsigned long long>(m));
  const Graph graph = GenerateRmat(n, m, /*seed=*/2012);

  bench::PrintTitle(
      "Table 1 (substituted): all systems on the largest local graph");
  std::printf("%-36s %12s %10s\n", "System", "Time(s)", "vs best");

  struct Entry {
    std::string name;
    double time;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"Sequential union-find",
       bench::TimeIt([&] { SequentialUnionFindCC(graph); })});
  entries.push_back({"BFSCC (Ligra)", bench::TimeIt([&] { BfsCC(graph); })});
  entries.push_back({"WorkefficientCC (Shun et al.)",
                     bench::TimeIt([&] { WorkEfficientCC(graph); })});
  entries.push_back({"GAPBS (Shiloach-Vishkin)",
                     bench::TimeIt([&] { GapbsShiloachVishkin(graph); })});
  entries.push_back(
      {"GAPBS (Afforest)", bench::TimeIt([&] { AfforestCC(graph); })});

  const Variant* fastest = &DefaultVariant();
  entries.push_back(
      {"ConnectIt (no sampling)",
       bench::TimeIt([&] { fastest->run(graph, SamplingConfig::None()); })});
  entries.push_back(
      {"ConnectIt (k-out sampling)",
       bench::TimeIt([&] { fastest->run(graph, SamplingConfig::KOut()); })});
  {
    SamplingConfig afforest_kout = SamplingConfig::KOut();
    afforest_kout.kout.variant = KOutVariant::kAfforest;
    entries.push_back(
        {"ConnectIt (k-out, afforest rule)",
         bench::TimeIt([&] { fastest->run(graph, afforest_kout); })});
  }
  entries.push_back(
      {"ConnectIt (BFS sampling)",
       bench::TimeIt([&] { fastest->run(graph, SamplingConfig::Bfs()); })});
  entries.push_back(
      {"ConnectIt (LDD sampling)",
       bench::TimeIt([&] { fastest->run(graph, SamplingConfig::Ldd()); })});

  // Memory-placement axis: the default variant's NumaReplicated twin, flat
  // vs replicated on the same graph. On a single-node topology the twin
  // falls back to flat (the locality counters stay at 0); emulate nodes
  // with CONNECTIT_NUMA_NODES=k to exercise the replica paths.
  {
    VariantDescriptor twin = fastest->descriptor;
    twin.placement = PlacementOption::kNumaReplicated;
    if (const Variant* replicated = FindVariant(twin)) {
      const stats::LocalitySnapshot l0 = stats::ReadLocality();
      entries.push_back(
          {"ConnectIt (NUMA-replicated, no sampling)",
           bench::TimeIt(
               [&] { replicated->run(graph, SamplingConfig::None()); })});
      entries.push_back(
          {"ConnectIt (NUMA-replicated, k-out)",
           bench::TimeIt(
               [&] { replicated->run(graph, SamplingConfig::KOut()); })});
      const stats::LocalitySnapshot l1 = stats::ReadLocality();
      std::printf(
          "NUMA: %zu node(s) (%s); locality over replicated runs: "
          "%llu local hint hops, %llu cross-node root hops, "
          "%llu hint compressions\n",
          NumaTopology::Get().num_nodes(), NumaTopology::Get().backend(),
          static_cast<unsigned long long>(l1.local_find_depth -
                                          l0.local_find_depth),
          static_cast<unsigned long long>(l1.cross_node_find_depth -
                                          l0.cross_node_find_depth),
          static_cast<unsigned long long>(l1.cross_node_compressions -
                                          l0.cross_node_compressions));
    }
  }

  double best = 1e300;
  for (const Entry& e : entries) best = std::min(best, e.time);
  for (const Entry& e : entries) {
    std::printf("%-36s %12.3f %9.2fx\n", e.name.c_str(), e.time,
                e.time / best);
  }

  // Compression footprint (Table 1 discusses the memory side; the paper's
  // byte-coded graphs are ~2.7x smaller than raw).
  const CompressedGraph cg = CompressedGraph::Encode(graph);
  const double raw_gb =
      static_cast<double>(graph.num_arcs() * sizeof(NodeId)) / 1e9;
  const double compressed_gb = static_cast<double>(cg.byte_size()) / 1e9;
  std::printf(
      "\nGraph storage: raw CSR edges %.3f GB, byte-coded %.3f GB "
      "(%.2fx smaller)\n",
      raw_gb, compressed_gb, raw_gb / compressed_gb);
  // ---- Cold load to first query: the on-disk container path ----
  // The scenario the .cgc container exists for: a service restarts with the
  // graph already on disk. Time every step of the cold path — mmap + header
  // validation (with and without full section-checksum verification) and
  // the first connectivity query served straight off the mapping — against
  // the warm in-memory CSR the rest of this bench used. No CSR is rebuilt
  // on the cold path (the mapped-materialization counter pins it at 0).
  bench::PrintTitle("Cold load to first query: mmap container vs in-memory");
  {
    const Variant* v = fastest;
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                             "/bench_large_graph.cgc";
    std::string error;
    const double write_s =
        bench::TimeIt([&] { WriteContainer(path, graph, &error); });
    if (!error.empty()) {
      std::fprintf(stderr, "container write failed: %s\n", error.c_str());
      return 1;
    }

    // Map with full checksum verification (the default), then without —
    // the gap is the price of scrubbing every section on open.
    MappedGraph mapped;
    const double map_verified_s = bench::TimeIt([&] {
      MappedGraph scratch;
      if (MappedGraph::Map(path, &scratch, &error)) mapped = std::move(scratch);
    });
    double map_unverified_s = 0;
    {
      ContainerMapOptions options;
      options.verify_checksums = false;
      map_unverified_s = bench::TimeIt([&] {
        MappedGraph scratch;
        MappedGraph::Map(path, &scratch, &error, options);
      });
    }
    if (!mapped.mapped()) {
      std::fprintf(stderr, "container map failed: %s\n", error.c_str());
      return 1;
    }

    const uint64_t materializations_before = MappedCsrMaterializations();
    const GraphHandle mapped_handle(mapped);
    const double first_query_s = bench::TimeIt(
        [&] { v->run(mapped_handle, SamplingConfig::KOut()); });
    const double warm_query_s =
        bench::TimeIt([&] { v->run(graph, SamplingConfig::KOut()); });
    const uint64_t mapped_materializations =
        MappedCsrMaterializations() - materializations_before;
    const double cold_total_s = map_verified_s + first_query_s;
    ::unlink(path.c_str());

    std::printf("%-44s %12.3f s\n", "container write", write_s);
    std::printf("%-44s %12.3f s\n", "map + validate (checksums verified)",
                map_verified_s);
    std::printf("%-44s %12.3f s\n", "map + validate (checksums skipped)",
                map_unverified_s);
    std::printf("%-44s %12.3f s\n", "first query off the mapping",
                first_query_s);
    std::printf("%-44s %12.3f s\n", "cold total (verified map + query)",
                cold_total_s);
    std::printf("%-44s %12.3f s\n", "warm in-memory query (baseline)",
                warm_query_s);
    std::printf("%-44s %12llu\n", "mapped csr materializations (must be 0)",
                static_cast<unsigned long long>(mapped_materializations));

    // Machine-readable artifact for the append-only trajectory
    // (tools/bench_trajectory.py append --label <pr> BENCH_container.json).
    if (FILE* f = std::fopen(container_out, "w")) {
      std::fprintf(
          f,
          "{\n"
          "  \"bench\": \"container_cold_load\",\n"
          "  \"n\": %u,\n"
          "  \"m\": %llu,\n"
          "  \"file_bytes\": %zu,\n"
          "  \"write_seconds\": %.6f,\n"
          "  \"map_verified_seconds\": %.6f,\n"
          "  \"map_unverified_seconds\": %.6f,\n"
          "  \"first_query_seconds\": %.6f,\n"
          "  \"cold_total_seconds\": %.6f,\n"
          "  \"warm_query_seconds\": %.6f,\n"
          "  \"mapped_csr_materializations\": %llu\n"
          "}\n",
          graph.num_nodes(), static_cast<unsigned long long>(graph.num_arcs()),
          mapped.file_bytes(), write_s, map_verified_s, map_unverified_s,
          first_query_s, cold_total_s, warm_query_s,
          static_cast<unsigned long long>(mapped_materializations));
      std::fclose(f);
      std::printf("wrote %s\n", container_out);
    } else {
      std::fprintf(stderr, "cannot write %s\n", container_out);
      return 1;
    }
  }

  std::printf(
      "\nExpected shape (paper): the fastest sampled ConnectIt variant beats\n"
      "every other system (3.1x over the prior record on Hyperlink2012).\n");
  return 0;
}
