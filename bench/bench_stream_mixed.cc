// Reproduces Figure 17: throughput of the Union-Rem-CAS streaming variants
// (find option x splice option) as a function of the insert-to-query ratio
// within a batch. For ratio x, each update is accompanied by 1/x random
// queries; the batch is randomly permuted.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/connectivity_index.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/parallel/random.h"

int main() {
  using namespace connectit;
  const NodeId n = bench::StreamNodes();
  const Graph graph = GenerateErdosRenyi(n, 8ull * n, /*seed=*/5);
  const EdgeList updates = ExtractEdges(graph);

  const std::vector<std::string> variants = {
      "Union-Rem-CAS;FindSplit;SplitAtomicOne",
      "Union-Rem-CAS;FindSplit;HalveAtomicOne",
      "Union-Rem-CAS;FindSplit;SpliceAtomic",
      "Union-Rem-CAS;FindHalve;SplitAtomicOne",
      "Union-Rem-CAS;FindHalve;HalveAtomicOne",
      "Union-Rem-CAS;FindHalve;SpliceAtomic",
      "Union-Rem-CAS;FindNaive;SplitAtomicOne",
      "Union-Rem-CAS;FindNaive;HalveAtomicOne",
      "Union-Rem-CAS;FindNaive;SpliceAtomic",
  };
  const double ratios[] = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

  bench::PrintTitle(
      "Figure 17: Union-Rem-CAS streaming throughput (ops/s) vs "
      "insert-to-query ratio");
  std::printf("%-44s", "Variant");
  for (double r : ratios) std::printf(" %8.2f", r);
  std::printf("\n");
  bench::PrintRule(140);

  Rng rng(123);
  for (const std::string& vn : variants) {
    const Variant* v = &GetVariantOrDie(vn);
    std::printf("%-44s", vn.c_str());
    for (const double ratio : ratios) {
      // Queries per update = 1/ratio (rounded).
      const size_t queries_per_update =
          std::max<size_t>(1, static_cast<size_t>(1.0 / ratio + 0.5));
      std::vector<Edge> queries;
      queries.reserve(updates.size() * queries_per_update);
      for (size_t i = 0; i < updates.size() * queries_per_update; ++i) {
        queries.push_back(
            {static_cast<NodeId>(rng.GetBounded(2 * i, n)),
             static_cast<NodeId>(rng.GetBounded(2 * i + 1, n))});
      }
      const size_t total_ops = updates.size() + queries.size();
      const double t = bench::TimeIt([&] {
        auto alg = v->make_streaming(StreamingSeed::Cold(n));
        alg->ProcessBatch(updates.edges, queries);
      });
      std::printf(" %8.1e", static_cast<double>(total_ops) / t);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): with few inserts (small ratio) the\n"
      "compressing find options win — queries help later queries; as the\n"
      "ratio approaches 1, FindNaive with SplitAtomicOne takes over, as in\n"
      "the static setting.\n");

  // Query-heavy batches on a warm structure: seed from the static pass over
  // the full graph, then answer a pure-query batch — the handoff's serving
  // mode (bulk load, then read-mostly traffic).
  bench::PrintTitle(
      "Handoff: pure-query batch on a cold vs statically seeded structure");
  std::printf("%-44s %14s %14s\n", "Variant", "Cold(q/s)", "Seeded(q/s)");
  bench::PrintRule();
  std::vector<Edge> probe;
  probe.reserve(1u << 20);
  for (size_t i = 0; i < (1u << 20); ++i) {
    probe.push_back({static_cast<NodeId>(rng.GetBounded(3 * i, n)),
                     static_cast<NodeId>(rng.GetBounded(3 * i + 1, n))});
  }
  for (const std::string& vn :
       {std::string("Union-Rem-CAS;FindNaive;SplitAtomicOne"),
        std::string("Union-Async;FindHalve")}) {
    const Variant* v = &GetVariantOrDie(vn);
    auto cold = v->make_streaming(StreamingSeed::Cold(n));
    const double t_cold =
        bench::TimeIt([&] { cold->ProcessBatch({}, probe); });
    auto seeded =
        v->make_streaming(StreamingSeed::FromStatic(bench::MakeSeedHandle(
            updates)));
    const double t_seeded =
        bench::TimeIt([&] { seeded->ProcessBatch({}, probe); });
    std::printf("%-44s %14.2e %14.2e\n", vn.c_str(), probe.size() / t_cold,
                probe.size() / t_seeded);
  }

  // Fully dynamic mix: per-operation-type latency through the Connectivity
  // façade. Inserts pay streaming union + forest maintenance + the Θ(n)
  // snapshot publication; erases additionally pay the replacement search
  // when a forest edge dies; queries ride the wait-free published
  // snapshot. Reporting the three separately is what the blended ops/s
  // table above cannot show.
  bench::PrintTitle(
      "Dynamic mix: per-operation-type latency via the Connectivity facade");
  std::printf("%-44s %14s %14s %14s\n", "Variant", "insert(us/op)",
              "erase(us/op)", "query(us/op)");
  bench::PrintRule();
  const size_t kBatch = std::min<size_t>(8192, updates.size() / 4);
  const size_t kQueries = 1u << 16;
  for (const std::string& vn :
       {std::string("Union-Rem-CAS;FindNaive;SplitAtomicOne"),
        std::string("Union-Rem-CAS;FindSplit;SpliceAtomic"),
        std::string("Union-Async;FindHalve")}) {
    Connectivity index(Connectivity::Spec().Algorithm(vn));
    index.Stream(n);
    // Bulk-load everything but the measurement batch, then arm the
    // dynamic forest outside the timed region (the first Erase pays the
    // one-off journal replay).
    const std::vector<Edge> bulk(updates.edges.begin(),
                                 updates.edges.end() - kBatch);
    index.Insert(bulk);
    index.Erase({bulk.front()});
    const std::vector<Edge> batch(updates.edges.end() - kBatch,
                                  updates.edges.end());
    const double t_insert = bench::TimeIt([&] { index.Insert(batch); });
    const double t_erase = bench::TimeIt([&] { index.Erase(batch); });
    uint64_t sink = 0;
    const double t_query = bench::TimeIt([&] {
      for (size_t i = 0; i < kQueries; ++i) {
        sink += index.SameComponent(
            static_cast<NodeId>(rng.GetBounded(5 * i, n)),
            static_cast<NodeId>(rng.GetBounded(5 * i + 1, n)));
      }
    });
    std::printf("%-44s %14.3f %14.3f %14.3f%s\n", vn.c_str(),
                t_insert * 1e6 / kBatch, t_erase * 1e6 / kBatch,
                t_query * 1e6 / kQueries, sink == ~0ull ? "!" : "");
  }
  return 0;
}
