// Reproduces Table 4: maximum streaming throughput (edge updates/second)
// per algorithm family on every suite graph plus RMAT and Barabasi-Albert
// synthetic update streams. The whole edge set is applied as one batch of
// pure updates, unpermuted, exactly as in the paper's protocol. A second
// table compares cold-start streaming against the static-to-streaming
// handoff (bulk static pass, then streamed tail batches).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"

namespace {

using namespace connectit;

const std::vector<std::pair<std::string, std::vector<std::string>>> kRows = {
    {"Union-Early", {"Union-Early;FindNaive"}},
    {"Union-Hooks", {"Union-Hooks;FindNaive"}},
    {"Union-Async", {"Union-Async;FindNaive"}},
    {"Union-Rem-CAS", {"Union-Rem-CAS;FindNaive;SplitAtomicOne"}},
    {"Union-Rem-Lock", {"Union-Rem-Lock;FindNaive;SplitAtomicOne"}},
    {"Union-JTB", {"Union-JTB;FindTwoTrySplit"}},
    {"Liu-Tarjan", {"Liu-Tarjan;CRFA"}},
    {"Shiloach-Vishkin", {"Shiloach-Vishkin"}},
};

}  // namespace

int main() {
  // Update streams: suite graphs in COO form + two synthetic generators.
  std::vector<std::pair<std::string, EdgeList>> streams;
  for (const auto& [name, graph] : bench::Suite()) {
    streams.emplace_back(name, ExtractEdges(graph));
  }
  const NodeId syn_n = bench::StreamNodes(1u << 22, 1u << 18);
  streams.emplace_back(
      "RMAT", GenerateRmatEdges(syn_n, 10ull * syn_n, /*seed=*/7));
  {
    EdgeList ba = GenerateBarabasiAlbertEdges(syn_n / 4, 10, /*seed=*/8);
    streams.emplace_back("BA", std::move(ba));
  }

  bench::PrintTitle(
      "Table 4: maximum streaming throughput (edge updates/second), single "
      "batch of pure updates");
  std::printf("%-18s", "Algorithm");
  for (const auto& [name, stream] : streams) std::printf(" %10s", name.c_str());
  std::printf("\n");
  bench::PrintRule();
  std::vector<double> best(streams.size(), 0.0);
  std::map<std::string, std::vector<double>> rows;
  for (const auto& [row_name, variants] : kRows) {
    std::vector<double>& row = rows[row_name];
    row.assign(streams.size(), 0.0);
    for (const std::string& vn : variants) {
      const Variant* v = &GetVariantOrDie(vn);
      if (!v->supports_streaming) continue;
      for (size_t s = 0; s < streams.size(); ++s) {
        const EdgeList& stream = streams[s].second;
        const double t = bench::TimeBest(
            [&] {
              auto alg =
                  v->make_streaming(StreamingSeed::Cold(stream.num_nodes));
              alg->ProcessBatch(stream.edges, {});
            },
            2);
        const double rate = static_cast<double>(stream.size()) / t;
        row[s] = std::max(row[s], rate);
        best[s] = std::max(best[s], row[s]);
      }
    }
  }
  for (const auto& [row_name, variants] : kRows) {
    (void)variants;
    std::printf("%-18s", row_name.c_str());
    for (size_t s = 0; s < streams.size(); ++s) {
      std::printf(" %9.2e%s", rows[row_name][s],
                  rows[row_name][s] >= best[s] ? "*" : " ");
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): union-find families dominate, with\n"
      "Union-Rem-CAS fastest on every input; Liu-Tarjan and\n"
      "Shiloach-Vishkin are an order of magnitude slower.\n");

  // Cold start vs static-to-streaming handoff: 75% of the RMAT stream is
  // bulk-loaded by the variant's own static pass, the rest streamed in
  // batches; the cold column streams everything in batches from empty.
  bench::PrintTitle(
      "Handoff: cold streaming vs static pass + seeded streaming (RMAT, "
      "25% held-out tail, 100k batches)");
  bench::PrintHandoffHeader();
  const EdgeList* rmat = nullptr;
  for (const auto& [name, stream] : streams) {
    if (name == "RMAT") rmat = &stream;
  }
  if (rmat == nullptr) return 1;
  for (const auto& [row_name, variants] : kRows) {
    const Variant* v = &GetVariantOrDie(variants.front());
    if (!v->supports_streaming) continue;
    bench::PrintHandoffRow(
        row_name.c_str(), bench::MeasureHandoff(*v, *rmat, /*batch_size=*/
                                                100000));
  }
  std::printf(
      "\nExpected shape: the static bulk pass beats pushing the same edges\n"
      "through batches for every family whose streaming form pays per-batch\n"
      "overhead (largest for round-synchronous Liu-Tarjan/SV and for\n"
      "retry-heavy unions); Rem's variants sit near 1x because their\n"
      "streaming form already is the static unite loop.\n");
  return 0;
}
