// Compressed-graph pipeline bench (paper §3.6): compression ratio of the
// byte-coded format per graph, and the run-time cost of computing
// connectivity directly on the compressed representation — the trade the
// paper makes to fit 128 B-edge graphs in 1 TB of RAM.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/connectit.h"
#include "src/graph/compressed.h"

int main() {
  using namespace connectit;
  using Finish = UnionFindFinish<UniteOption::kRemCas, FindOption::kNaive,
                                 SpliceOption::kSplitOne>;

  bench::PrintTitle(
      "Compressed pipeline: byte-coded CSR size and connectivity cost "
      "(Union-Rem-CAS, k-out sampling)");
  std::printf("%-10s %12s %12s %8s %14s %14s %10s\n", "Graph", "Raw(MB)",
              "Coded(MB)", "Ratio", "CC plain(s)", "CC coded(s)", "Slowdown");
  for (const auto& [name, graph] : bench::Suite()) {
    const CompressedGraph cg = CompressedGraph::Encode(graph);
    const double raw_mb =
        static_cast<double>(graph.num_arcs() * sizeof(NodeId)) / 1e6;
    const double coded_mb = static_cast<double>(cg.byte_size()) / 1e6;
    const double t_plain = bench::TimeBest(
        [&] { RunConnectivity<Finish>(graph, SamplingConfig::KOut()); }, 2);
    const double t_coded = bench::TimeBest(
        [&] { RunConnectivity<Finish>(cg, SamplingConfig::KOut()); }, 2);
    std::printf("%-10s %12.2f %12.2f %7.2fx %14.3e %14.3e %9.2fx\n",
                name.c_str(), raw_mb, coded_mb, raw_mb / coded_mb, t_plain,
                t_coded, t_coded / t_plain);
  }
  std::printf(
      "\nExpected shape (paper): byte coding shrinks web-like graphs ~2.7x\n"
      "(more with locality-preserving vertex orders) at a modest decode\n"
      "cost, which is what makes the Hyperlink graphs processable on one\n"
      "machine.\n");
  return 0;
}
