// Compressed-graph pipeline bench (paper §3.6): compression ratio of the
// byte-coded format per graph, and the run-time cost of computing
// connectivity directly on the compressed representation — the trade the
// paper makes to fit 128 B-edge graphs in 1 TB of RAM.
//
// Compressed inputs are not a special case: both representations run
// through the registry as GraphHandles, so any registered variant can be
// timed on either format.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/registry.h"
#include "src/graph/compressed.h"
#include "src/graph/graph_handle.h"

int main() {
  using namespace connectit;

  bench::PrintTitle(
      "Compressed pipeline: byte-coded CSR size and connectivity cost "
      "(Union-Rem-CAS, k-out sampling)");
  const Variant* rem = &DefaultVariant();
  std::printf("%-10s %12s %12s %8s %14s %14s %10s\n", "Graph", "Raw(MB)",
              "Coded(MB)", "Ratio", "CC plain(s)", "CC coded(s)", "Slowdown");
  const auto suite = bench::Suite();
  for (const auto& [name, graph] : suite) {
    const GraphHandle plain(graph);
    const GraphHandle coded = GraphHandle::Compress(graph);
    const double raw_mb =
        static_cast<double>(graph.num_arcs() * sizeof(NodeId)) / 1e6;
    const double coded_mb =
        static_cast<double>(coded.compressed()->byte_size()) / 1e6;
    const double t_plain = bench::TimeBest(
        [&] { rem->run(plain, SamplingConfig::KOut()); }, 2);
    const double t_coded = bench::TimeBest(
        [&] { rem->run(coded, SamplingConfig::KOut()); }, 2);
    std::printf("%-10s %12.2f %12.2f %7.2fx %14.3e %14.3e %9.2fx\n",
                name.c_str(), raw_mb, coded_mb, raw_mb / coded_mb, t_plain,
                t_coded, t_coded / t_plain);
  }

  // Decode-cost spread across algorithm families: one representative
  // registry variant per family, both representations, one suite graph.
  bench::PrintTitle(
      "Per-family decode cost (social graph, no sampling): registry "
      "variants on plain vs byte-coded handles");
  const std::vector<const char*> reps = {
      "Union-Rem-CAS;FindNaive;SplitAtomicOne",
      "Union-Async;FindCompress",
      "Union-JTB;FindTwoTrySplit",
      "Shiloach-Vishkin",
      "Liu-Tarjan;PRF",
      "Label-Propagation",
  };
  const Graph& social = suite[1].graph;
  const GraphHandle plain(social);
  const GraphHandle coded = GraphHandle::Compress(social);
  std::printf("%-42s %14s %14s %10s\n", "Variant", "plain(s)", "coded(s)",
              "Slowdown");
  for (const char* name : reps) {
    const Variant* v = &GetVariantOrDie(name);
    const double t_plain = bench::TimeBest([&] { v->run(plain, {}); }, 2);
    const double t_coded = bench::TimeBest([&] { v->run(coded, {}); }, 2);
    std::printf("%-42s %14.3e %14.3e %9.2fx\n", name, t_plain, t_coded,
                t_coded / t_plain);
  }

  std::printf(
      "\nExpected shape (paper): byte coding shrinks web-like graphs ~2.7x\n"
      "(more with locality-preserving vertex orders) at a modest decode\n"
      "cost, which is what makes the Hyperlink graphs processable on one\n"
      "machine.\n");
  return 0;
}
