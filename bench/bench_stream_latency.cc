// Reproduces Figure 18: per-batch latency of streaming algorithms at
// varying batch sizes over a long pure-update stream. The paper's finding
// is that latency is highly regular: the median per-batch time stays within
// 1-2% of the mean, and latency grows linearly with batch size.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"

int main() {
  using namespace connectit;
  const NodeId n = bench::StreamNodes();
  const EdgeList stream = GenerateRmatEdges(n, 8ull * n, /*seed=*/17);

  const std::vector<std::string> algos = {
      "Union-Rem-CAS;FindNaive;SplitAtomicOne",
      "Union-Rem-Lock;FindNaive;SplitAtomicOne",
      "Union-Async;FindNaive",
      "Liu-Tarjan;CRFA",
  };

  bench::PrintTitle(
      "Figure 18: per-batch latency statistics over a pure-update stream");
  std::printf("%-44s %10s %12s %12s %12s %10s\n", "Algorithm", "BatchSize",
              "Median(s)", "Mean(s)", "P99(s)", "Med/Mean");
  for (const std::string& name : algos) {
    const Variant* v = &GetVariantOrDie(name);
    for (size_t batch = 1000; batch <= stream.size() / 4; batch *= 10) {
      auto alg = v->make_streaming(StreamingSeed::Cold(n));
      std::vector<double> latencies;
      for (const std::vector<Edge>& b :
           bench::SliceBatches(stream.edges, batch)) {
        if (b.size() < batch) break;  // keep batch sizes uniform
        latencies.push_back(bench::TimeIt([&] { alg->ProcessBatch(b, {}); }));
      }
      std::sort(latencies.begin(), latencies.end());
      double sum = 0;
      for (double l : latencies) sum += l;
      const double mean = sum / static_cast<double>(latencies.size());
      const double median = latencies[latencies.size() / 2];
      const double p99 = latencies[latencies.size() * 99 / 100];
      std::printf("%-44s %10zu %12.3e %12.3e %12.3e %10.3f\n", name.c_str(),
                  batch, median, mean, p99, median / mean);
    }
  }
  std::printf(
      "\nExpected shape (paper): median/mean close to 1 (regular\n"
      "latencies); per-batch latency grows linearly with batch size; the\n"
      "lowest latencies come from Union-Rem-CAS with SplitAtomicOne.\n");

  // Cold vs seeded: does warm-starting from a static pass change tail
  // latency? (It should not — only the time to reach that state.)
  bench::PrintTitle(
      "Handoff: cold vs static pass + seeded streaming (same stream, 25% "
      "tail, 10k batches)");
  bench::PrintHandoffHeader();
  for (const std::string& name : algos) {
    const Variant* v = &GetVariantOrDie(name);
    bench::PrintHandoffRow(name.c_str(),
                           bench::MeasureHandoff(*v, stream, /*batch_size=*/
                                                 10000));
  }
  return 0;
}
