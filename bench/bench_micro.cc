// Google-benchmark microbenchmarks for the primitives underlying every
// ConnectIt variant: find/compaction rules on deep forests, unite
// operations, WriteMin under contention, and the parallel runtime.

#include <numeric>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/graph/generators.h"
#include "src/parallel/atomics.h"
#include "src/parallel/primitives.h"
#include "src/parallel/random.h"
#include "src/parallel/thread_pool.h"
#include "src/unionfind/dsu.h"
#include "src/unionfind/find.h"

namespace connectit {
namespace {

std::vector<NodeId> MakeChain(NodeId n) {
  std::vector<NodeId> p(n);
  for (NodeId v = 0; v < n; ++v) p[v] = (v == 0) ? 0 : v - 1;
  return p;
}

template <FindOption kFind>
void BM_FindOnChain(benchmark::State& state) {
  const NodeId depth = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<NodeId> p = MakeChain(depth);
    state.ResumeTiming();
    benchmark::DoNotOptimize(Find<kFind>(depth - 1, p.data()));
  }
}
BENCHMARK_TEMPLATE(BM_FindOnChain, FindOption::kNaive)->Arg(64)->Arg(4096);
BENCHMARK_TEMPLATE(BM_FindOnChain, FindOption::kSplit)->Arg(64)->Arg(4096);
BENCHMARK_TEMPLATE(BM_FindOnChain, FindOption::kHalve)->Arg(64)->Arg(4096);
BENCHMARK_TEMPLATE(BM_FindOnChain, FindOption::kCompress)->Arg(64)->Arg(4096);
BENCHMARK_TEMPLATE(BM_FindOnChain, FindOption::kTwoTrySplit)->Arg(64)->Arg(4096);

template <UniteOption kU, FindOption kF, SpliceOption kS>
void BM_UniteRandomEdges(benchmark::State& state) {
  const NodeId n = 1 << 16;
  const EdgeList edges = GenerateErdosRenyiEdges(n, 4 * n, 9);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<NodeId> p(n);
    std::iota(p.begin(), p.end(), NodeId{0});
    Dsu<kU, kF, kS> dsu(p.data(), n);
    state.ResumeTiming();
    ParallelFor(0, edges.size(), [&](size_t i) {
      dsu.Unite(edges.edges[i].u, edges.edges[i].v);
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK_TEMPLATE(BM_UniteRandomEdges, UniteOption::kAsync, FindOption::kNaive, SpliceOption::kNone);
BENCHMARK_TEMPLATE(BM_UniteRandomEdges, UniteOption::kHooks, FindOption::kNaive, SpliceOption::kNone);
BENCHMARK_TEMPLATE(BM_UniteRandomEdges, UniteOption::kEarly, FindOption::kNaive, SpliceOption::kNone);
BENCHMARK_TEMPLATE(BM_UniteRandomEdges, UniteOption::kRemCas, FindOption::kNaive, SpliceOption::kSplitOne);
BENCHMARK_TEMPLATE(BM_UniteRandomEdges, UniteOption::kRemLock, FindOption::kNaive, SpliceOption::kSplitOne);
BENCHMARK_TEMPLATE(BM_UniteRandomEdges, UniteOption::kJtb, FindOption::kTwoTrySplit, SpliceOption::kNone);

void BM_WriteMinContended(benchmark::State& state) {
  uint64_t target = UINT64_MAX;
  size_t i = 0;
  for (auto _ : state) {
    WriteMin(&target, Hash64(i++));
    benchmark::DoNotOptimize(target);
  }
}
BENCHMARK(BM_WriteMinContended);

void BM_ParallelForOverhead(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> out(n);
  for (auto _ : state) {
    ParallelFor(0, n, [&](size_t v) { out[v] = v * 3; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1024)->Arg(1 << 20);

void BM_ScanExclusive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> data(n, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ScanExclusive(data.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ScanExclusive)->Arg(1 << 20);

void BM_ParallelSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> data(n);
    for (size_t i = 0; i < n; ++i) data[i] = rng.Get(i);
    state.ResumeTiming();
    ParallelSort(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 18);

}  // namespace
}  // namespace connectit

BENCHMARK_MAIN();
