// Reproduces Figure 4 (and Figure 16): streaming throughput as a function
// of batch size for every streaming algorithm family, on the BA graph (the
// paper's Friendster plot) and the road graph.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"

namespace {

using namespace connectit;

const std::vector<std::pair<std::string, std::string>> kAlgos = {
    {"Union-Early", "Union-Early;FindNaive"},
    {"Union-Hooks", "Union-Hooks;FindNaive"},
    {"Union-Async", "Union-Async;FindNaive"},
    {"Union-Rem-CAS", "Union-Rem-CAS;FindNaive;SplitAtomicOne"},
    {"Union-Rem-Lock", "Union-Rem-Lock;FindNaive;SplitAtomicOne"},
    {"Union-JTB", "Union-JTB;FindTwoTrySplit"},
    {"Liu-Tarjan", "Liu-Tarjan;CRFA"},
    {"Shiloach-Vishkin", "Shiloach-Vishkin"},
};

void RunGraph(const char* name, const EdgeList& stream) {
  std::printf("\n[%s] n=%u, updates=%zu\n", name, stream.num_nodes,
              stream.size());
  std::printf("%-18s", "Algorithm");
  std::vector<size_t> batch_sizes;
  for (size_t b = 1000; b <= stream.size(); b *= 10) batch_sizes.push_back(b);
  batch_sizes.push_back(stream.size());
  for (size_t b : batch_sizes) std::printf(" %10zu", b);
  std::printf("\n");
  bench::PrintRule();
  for (const auto& [row, vn] : kAlgos) {
    const Variant* v = &GetVariantOrDie(vn);
    std::printf("%-18s", row.c_str());
    for (const size_t batch : batch_sizes) {
      const auto batches = bench::SliceBatches(stream.edges, batch);
      auto alg = v->make_streaming(StreamingSeed::Cold(stream.num_nodes));
      const double t = bench::DriveBatches(*alg, batches);
      std::printf(" %10.2e", static_cast<double>(stream.size()) / t);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::PrintTitle(
      "Figure 4/16: streaming throughput (updates/s) vs batch size");
  const NodeId n = bench::StreamNodes();
  const EdgeList ba = GenerateBarabasiAlbertEdges(n, 10, /*seed=*/3);
  RunGraph("ba (Friendster analog)", ba);
  const Graph road = GenerateGrid(bench::LargeScale() ? 1024 : 256,
                                  bench::LargeScale() ? 1024 : 256);
  RunGraph("road", ExtractEdges(road));
  std::printf(
      "\nExpected shape (paper): union-find throughput is already high at\n"
      "small batches and grows with batch size; round-synchronous methods\n"
      "(Liu-Tarjan, SV) pay a per-batch cost proportional to n and only\n"
      "become competitive at very large batches.\n");

  // The handoff counterpart of the batch-size story: small batches are
  // where cold-start streaming loses the most against a bulk static pass.
  bench::PrintTitle(
      "Handoff on ba: cold streaming vs static pass + seeded tail, by "
      "batch size (25% tail)");
  bench::PrintHandoffHeader();
  const connectit::Variant* rem = &connectit::DefaultVariant();
  for (const size_t batch : {1000u, 10000u, 100000u}) {
    char label[64];
    std::snprintf(label, sizeof label, "Union-Rem-CAS @ batch=%zu",
                  static_cast<size_t>(batch));
    bench::PrintHandoffRow(label, bench::MeasureHandoff(*rem, ba, batch));
  }
  return 0;
}
