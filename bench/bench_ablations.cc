// Ablation benches for the design choices DESIGN.md calls out:
//   A1  IdentifyFrequent: sampled estimator vs exact count
//   A2  two-phase execution: frequent-component skip on vs off
//   A3  streaming batch locality: unpermuted vs permuted update order
//       (the paper's LLC analysis of streaming, §C.3)
//   A4  ParallelFor grain sensitivity on the finish loop
//   A5  thread scaling of the fastest variant
//   A6  static-to-streaming handoff: cold streaming vs seeded warm start

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/connectit.h"
#include "src/core/frequent.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/parallel/random.h"

int main() {
  using namespace connectit;
  const auto suite = bench::Suite();
  const Variant* fastest = &DefaultVariant();

  // ---- A1: IdentifyFrequent sampled vs exact ----
  bench::PrintTitle("Ablation A1: IdentifyFrequent — sampled vs exact");
  std::printf("%-10s %14s %14s %10s\n", "Graph", "Sampled(s)", "Exact(s)",
              "Agree");
  for (const auto& [name, graph] : suite) {
    std::vector<NodeId> labels = IdentityLabels(graph.num_nodes());
    KOutSample(graph, KOutOptions{}, labels);
    FrequentResult sampled;
    FrequentResult exact;
    const double ts =
        bench::TimeBest([&] { sampled = IdentifyFrequentSampled(labels); }, 3);
    const double te =
        bench::TimeBest([&] { exact = IdentifyFrequentExact(labels); }, 3);
    std::printf("%-10s %14.3e %14.3e %10s\n", name.c_str(), ts, te,
                sampled.label == exact.label ? "yes" : "NO");
  }

  // ---- A2: two-phase skip on/off ----
  bench::PrintTitle(
      "Ablation A2: finish-phase frequent-component skip (two-phase "
      "execution) on vs off");
  std::printf("%-10s %14s %14s %10s\n", "Graph", "Skip on(s)", "Skip off(s)",
              "Benefit");
  for (const auto& [name, graph] : suite) {
    using Finish = UnionFindFinish<UniteOption::kRemCas, FindOption::kNaive,
                                   SpliceOption::kSplitOne>;
    const double with_skip = bench::TimeBest(
        [&] { RunConnectivity<Finish>(graph, SamplingConfig::KOut()); }, 2);
    // Skip off: sample, then pretend no frequent component was found.
    const double without_skip = bench::TimeBest(
        [&] {
          std::vector<NodeId> labels = IdentityLabels(graph.num_nodes());
          KOutSampleT(graph, KOutOptions{}, labels);
          Finish::FinishComponents(graph, labels, kInvalidNode);
        },
        2);
    std::printf("%-10s %14.3e %14.3e %9.2fx\n", name.c_str(), with_skip,
                without_skip, without_skip / with_skip);
  }

  // ---- A3: streaming batch order ----
  bench::PrintTitle(
      "Ablation A3: streaming throughput — unpermuted vs permuted batches");
  std::printf("%-10s %16s %16s %8s\n", "Graph", "Unpermuted(/s)",
              "Permuted(/s)", "Ratio");
  for (const auto& [name, graph] : suite) {
    EdgeList stream = ExtractEdges(graph);
    const double t_plain = bench::TimeBest(
        [&] {
          auto alg = fastest->make_streaming(StreamingSeed::Cold(stream.num_nodes));
          alg->ProcessBatch(stream.edges, {});
        },
        2);
    // Permute the update order.
    EdgeList shuffled = stream;
    const std::vector<NodeId> perm = RandomPermutation(
        static_cast<NodeId>(shuffled.size()), /*seed=*/3);
    std::vector<Edge> permuted(shuffled.size());
    for (size_t i = 0; i < shuffled.size(); ++i) {
      permuted[i] = shuffled.edges[perm[i]];
    }
    shuffled.edges = std::move(permuted);
    const double t_perm = bench::TimeBest(
        [&] {
          auto alg = fastest->make_streaming(StreamingSeed::Cold(shuffled.num_nodes));
          alg->ProcessBatch(shuffled.edges, {});
        },
        2);
    std::printf("%-10s %16.3e %16.3e %7.2fx\n", name.c_str(),
                stream.size() / t_plain, stream.size() / t_perm,
                t_perm / t_plain);
  }

  // ---- A4: grain sensitivity ----
  bench::PrintTitle(
      "Ablation A4: ParallelFor grain for the unite loop (social graph)");
  const Graph& social = suite[1].graph;
  std::printf("%10s %14s\n", "Grain", "Time(s)");
  for (const size_t grain : {1u, 16u, 64u, 256u, 4096u}) {
    const double t = bench::TimeBest(
        [&] {
          std::vector<NodeId> labels = IdentityLabels(social.num_nodes());
          Dsu<UniteOption::kRemCas, FindOption::kNaive,
              SpliceOption::kSplitOne>
              dsu(labels.data(), social.num_nodes());
          ParallelFor(
              0, social.num_nodes(),
              [&](size_t ui) {
                const NodeId u = static_cast<NodeId>(ui);
                for (NodeId v : social.neighbors(u)) {
                  if (u < v) dsu.Unite(u, v);
                }
              },
              grain);
        },
        2);
    std::printf("%10zu %14.3e\n", grain, t);
  }

  // ---- A5: thread scaling ----
  bench::PrintTitle("Ablation A5: thread scaling (fastest variant, social)");
  std::printf("%10s %14s %10s\n", "Workers", "Time(s)", "Speedup");
  const size_t original = NumWorkers();
  const size_t max_workers = std::max<size_t>(original, 4);
  double base = 0;
  for (size_t w = 1; w <= max_workers; w *= 2) {
    SetNumWorkers(w);
    const double t =
        bench::TimeBest([&] { fastest->run(social, SamplingConfig::KOut()); },
                        2);
    if (w == 1) base = t;
    std::printf("%10zu %14.3e %9.2fx\n", w, t, base / t);
  }
  SetNumWorkers(original);

  // ---- A6: static-to-streaming handoff ----
  bench::PrintTitle(
      "Ablation A6: cold streaming vs static pass + seeded streaming "
      "(25% tail, 10k batches)");
  bench::PrintHandoffHeader();
  for (const auto& [name, graph] : suite) {
    const EdgeList stream = ExtractEdges(graph);
    bench::PrintHandoffRow(name.c_str(),
                           bench::MeasureHandoff(*fastest, stream,
                                                 /*batch_size=*/10000));
  }
  std::printf(
      "\nExpected shape: for Rem's variants the seeded total (static pass +\n"
      "tail) roughly ties cold streaming — their streaming form is the\n"
      "static unite loop already; the handoff win appears for the other\n"
      "families (see bench_stream_throughput's handoff table).\n");
  return 0;
}
